/**
 * @file
 * Tests for the experiment runner helpers: canonical configurations,
 * scale resolution, workload caching, and a cross-workload
 * characterizer property sweep over the paper's full irregular set.
 */

#include <gtest/gtest.h>

#include <cstdlib>

#include "system/experiment.hh"

namespace emcc {
namespace {

using namespace experiments;

TEST(Experiment, PaperConfigMatchesTableOne)
{
    const auto cfg = paperConfig(Scheme::Emcc);
    EXPECT_EQ(cfg.cores, 4u);
    EXPECT_EQ(cfg.l2_bytes, 1_MiB);
    EXPECT_EQ(cfg.llc_bytes, 8_MiB);
    EXPECT_EQ(cfg.mc_ctr_cache_bytes, 128_KiB);
    EXPECT_EQ(cfg.l2_ctr_cap_bytes, 32_KiB);
    EXPECT_EQ(cfg.aes_latency, nsToTicks(14.0));
    EXPECT_EQ(cfg.dram.channels, 1u);
    EXPECT_EQ(cfg.dram.t_cl, nsToTicks(13.75));
    EXPECT_EQ(cfg.page_bytes, 2_MiB);
    EXPECT_EQ(cfg.design, CounterDesignKind::Morphable);
    EXPECT_TRUE(cfg.countersInLlc());
}

TEST(Experiment, AesBandwidthSplit)
{
    auto cfg = paperConfig(Scheme::Emcc);
    EXPECT_DOUBLE_EQ(cfg.l2AesRate(), 325e6);
    EXPECT_DOUBLE_EQ(cfg.mcAesRate(), 1.3e9);
    cfg.scheme = Scheme::LlcBaseline;
    EXPECT_DOUBLE_EQ(cfg.mcAesRate(), 2.6e9);   // nothing moved
}

TEST(Experiment, PintoolConfigPerCoreLlc)
{
    const auto c2 = pintoolConfig(Scheme::LlcBaseline, 2);
    EXPECT_EQ(c2.llc_bytes_per_core, 2_MiB);
    const auto c12 = pintoolConfig(Scheme::LlcBaseline, 12);
    EXPECT_EQ(c12.llc_bytes_per_core, 12_MiB);
    EXPECT_EQ(c2.mc_ctr_cache_bytes, 128_KiB);
}

TEST(Experiment, ScaleEnvKnobs)
{
    unsetenv("EMCC_BENCH_FAST");
    unsetenv("EMCC_BENCH_FULL");
    const auto normal = BenchScale::fromEnv();
    setenv("EMCC_BENCH_FAST", "1", 1);
    const auto fast = BenchScale::fromEnv();
    unsetenv("EMCC_BENCH_FAST");
    setenv("EMCC_BENCH_FULL", "1", 1);
    const auto full = BenchScale::fromEnv();
    unsetenv("EMCC_BENCH_FULL");

    EXPECT_LT(fast.workload.trace_len, normal.workload.trace_len);
    EXPECT_LT(normal.workload.trace_len, full.workload.trace_len);
    EXPECT_LT(fast.measure_instructions, normal.measure_instructions);
}

TEST(Experiment, CachedWorkloadReturnsSameObject)
{
    WorkloadParams p;
    p.cores = 1;
    p.trace_len = 1'000;
    p.graph_vertices = 1 << 10;
    const auto &a = cachedWorkload("BFS", p);
    const auto &b = cachedWorkload("BFS", p);
    EXPECT_EQ(&a, &b);
    p.seed = 99;
    const auto &c = cachedWorkload("BFS", p);
    EXPECT_NE(&a, &c);
}

TEST(Experiment, MeanHelper)
{
    EXPECT_DOUBLE_EQ(mean({}), 0.0);
    EXPECT_DOUBLE_EQ(mean({1.0, 3.0}), 2.0);
}

/**
 * Property sweep: every irregular workload through the EMCC
 * characterizer must satisfy the structural invariants the figures
 * rely on.
 */
class IrregularSweep : public ::testing::TestWithParam<std::string>
{};

TEST_P(IrregularSweep, EmccInvariantsHold)
{
    WorkloadParams p;
    p.cores = 2;
    p.trace_len = 40'000;
    p.graph_vertices = 1 << 14;
    p.graph_degree = 8;
    p.footprint_scale = 1.0 / 32.0;
    const auto w = buildWorkload(GetParam(), p);

    CharacterizerConfig cfg;
    cfg.cores = 2;
    cfg.l2_bytes = 64_KiB;
    cfg.llc_bytes_per_core = 128_KiB;
    cfg.mc_ctr_cache_bytes = 8_KiB;
    cfg.l2_ctr_cap_bytes = 4_KiB;
    cfg.scheme = Scheme::Emcc;
    Characterizer c(cfg);
    c.run(w);
    const auto &r = c.results();

    EXPECT_EQ(r.data_refs, w.totalRefs());
    EXPECT_EQ(r.l2_ctr_hits + r.l2_ctr_misses, r.l2_data_misses);
    EXPECT_EQ(r.emcc_ctr_accesses_to_llc, r.l2_ctr_misses);
    EXPECT_LE(r.useless_ctr_accesses, r.l2_ctr_inserts);
    EXPECT_LE(r.l2_ctr_invalidations, r.l2_ctr_inserts);
    EXPECT_LE(r.data_reads_at_mc, r.l2_data_misses);
    EXPECT_EQ(r.dram_data_reads, r.data_reads_at_mc);
}

INSTANTIATE_TEST_SUITE_P(AllIrregular, IrregularSweep,
                         ::testing::ValuesIn(irregularWorkloads()),
                         [](const auto &pinfo) { return pinfo.param; });

/** The regular set must build and stay cache-friendlier than mcf. */
class RegularSweep : public ::testing::TestWithParam<std::string>
{};

TEST_P(RegularSweep, BuildsAndReplays)
{
    WorkloadParams p;
    p.cores = 1;
    p.trace_len = 20'000;
    p.footprint_scale = 1.0 / 16.0;
    const auto w = buildWorkload(GetParam(), p);
    ASSERT_EQ(w.per_core.size(), 1u);
    EXPECT_EQ(w.per_core[0].size(), p.trace_len);

    CharacterizerConfig cfg;
    cfg.cores = 1;
    cfg.l2_bytes = 64_KiB;
    cfg.llc_bytes_per_core = 256_KiB;
    cfg.mc_ctr_cache_bytes = 8_KiB;
    cfg.scheme = Scheme::Emcc;
    Characterizer c(cfg);
    c.run(w);
    EXPECT_EQ(c.results().data_refs, p.trace_len);
}

INSTANTIATE_TEST_SUITE_P(AllRegular, RegularSweep,
                         ::testing::ValuesIn(regularWorkloads()),
                         [](const auto &pinfo) { return pinfo.param; });

} // namespace
} // namespace emcc

/**
 * @file
 * Fault-injection & resilience layer tests: spec parsing, deterministic
 * injection, the end-to-end recovery protocol through the timing
 * schemes, the forward-progress watchdog, and the recoverable
 * configuration-error path.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>

#include "common/error.hh"
#include "fault/fault_injector.hh"
#include "fault/fault_spec.hh"
#include "sim/watchdog.hh"
#include "system/secure_system.hh"

namespace emcc {
namespace {

// ------------------------------------------------------------- spec parsing

TEST(FaultSpec, ParsesMultiCampaignString)
{
    const auto spec = FaultSpec::parse(
        "bus:count=50:period=100;replay:count=2;nocdelay:prob=0.01");
    ASSERT_EQ(spec.campaigns.size(), 3u);
    EXPECT_EQ(spec.campaigns[0].kind, FaultKind::BusFlip);
    EXPECT_EQ(spec.campaigns[0].count, 50u);
    EXPECT_EQ(spec.campaigns[0].period, 100u);
    EXPECT_EQ(spec.campaigns[1].kind, FaultKind::Replay);
    EXPECT_EQ(spec.campaigns[1].count, 2u);
    EXPECT_EQ(spec.campaigns[2].kind, FaultKind::NocDelay);
    EXPECT_DOUBLE_EQ(spec.campaigns[2].prob, 0.01);
    EXPECT_TRUE(spec.enabled());
}

TEST(FaultSpec, RenderRoundTrips)
{
    const std::string s = "data:count=3:period=500;aesstall:prob=0.25";
    const auto spec = FaultSpec::parse(s);
    const auto again = FaultSpec::parse(spec.render());
    ASSERT_EQ(again.campaigns.size(), spec.campaigns.size());
    for (std::size_t i = 0; i < spec.campaigns.size(); ++i) {
        EXPECT_EQ(again.campaigns[i].kind, spec.campaigns[i].kind);
        EXPECT_EQ(again.campaigns[i].count, spec.campaigns[i].count);
        EXPECT_EQ(again.campaigns[i].period, spec.campaigns[i].period);
        EXPECT_DOUBLE_EQ(again.campaigns[i].prob, spec.campaigns[i].prob);
    }
}

TEST(FaultSpec, RejectsMalformedInput)
{
    EXPECT_THROW(FaultSpec::parse("gremlin:count=1"), ConfigError);
    EXPECT_THROW(FaultSpec::parse("bus:count="), ConfigError);
    EXPECT_THROW(FaultSpec::parse("bus:count=abc"), ConfigError);
    EXPECT_THROW(FaultSpec::parse("bus:wat=3"), ConfigError);
    EXPECT_THROW(FaultSpec::parse("bus:period=0"), ConfigError);
    EXPECT_THROW(FaultSpec::parse("nocdelay:prob=1.5"), ConfigError);
    EXPECT_THROW(FaultSpec::parse("data:prob=0.5"), ConfigError);
    EXPECT_THROW(FaultSpec::parse(";"), ConfigError);
}

TEST(FaultSpec, KindPredicates)
{
    EXPECT_TRUE(faultIsTransient(FaultKind::BusFlip));
    EXPECT_TRUE(faultIsTransient(FaultKind::CtrCacheFlip));
    EXPECT_FALSE(faultIsTransient(FaultKind::DataFlip));
    EXPECT_FALSE(faultIsTransient(FaultKind::Replay));
    EXPECT_TRUE(faultIsIntegrity(FaultKind::Replay));
    EXPECT_FALSE(faultIsIntegrity(FaultKind::NocDelay));
}

// ------------------------------------------------------------ the injector

TEST(FaultInjector, IdenticalSeedsProduceIdenticalStreams)
{
    const auto spec = FaultSpec::parse("bus:count=8:period=10");
    FaultInjector a(spec, 42), b(spec, 42);
    for (unsigned i = 0; i < 400; ++i) {
        const Addr blk{(i % 13) * kBlockBytes};
        a.onDataFetched(blk, Tick{i * 1000});
        b.onDataFetched(blk, Tick{i * 1000});
    }
    ASSERT_EQ(a.report().events.size(), b.report().events.size());
    EXPECT_EQ(a.report().injectedAll(), 8u);
    for (std::size_t i = 0; i < a.report().events.size(); ++i) {
        EXPECT_EQ(a.report().events[i].addr, b.report().events[i].addr);
        EXPECT_EQ(a.report().events[i].injected_at,
                  b.report().events[i].injected_at);
    }
}

TEST(FaultInjector, TaintFailsVerifyUntilTransientRefetch)
{
    // period=1 with count=1: the first eligible fetch is tainted.
    FaultInjector inj(FaultSpec::parse("bus:count=1:period=1"), 1);
    const Addr blk{0x1000}, ctr{0x9000};
    inj.onDataFetched(blk, Tick{100});
    auto det = inj.checkVerify(blk, ctr, Tick{200});
    ASSERT_TRUE(det.has_value());
    EXPECT_EQ(det->kind, FaultKind::BusFlip);
    EXPECT_EQ(det->addr, blk);
    // A cache-bypassing re-fetch clears in-flight corruption.
    inj.recoveryRefetch(blk, ctr, Tick{300});
    EXPECT_FALSE(inj.checkVerify(blk, ctr, Tick{400}).has_value());
    inj.noteRecovered(*det, Tick{400}, 1);
    EXPECT_EQ(inj.report().recoveredAll(), 1u);
    EXPECT_EQ(inj.report().fatalAll(), 0u);
}

TEST(FaultInjector, PersistentTaintSurvivesRefetchAndHealsOnWrite)
{
    FaultInjector inj(FaultSpec::parse("data:count=1:period=1"), 1);
    const Addr blk{0x2000}, ctr{0xa000};
    inj.onDataFetched(blk, Tick{100});
    ASSERT_TRUE(inj.checkVerify(blk, ctr, Tick{200}).has_value());
    // DRAM-resident corruption survives any number of re-fetches ...
    inj.recoveryRefetch(blk, ctr, Tick{300});
    EXPECT_TRUE(inj.checkVerify(blk, ctr, Tick{400}).has_value());
    // ... and heals only when the block is rewritten in DRAM.
    inj.onDramWrite(blk, /*counter_class=*/false, Tick{500});
    EXPECT_FALSE(inj.checkVerify(blk, ctr, Tick{600}).has_value());
}

TEST(FaultInjector, UnverifiedBlocksPassVerify)
{
    FaultInjector inj(FaultSpec::parse("bus:count=1:period=1"), 1);
    inj.onDataFetched(Addr{0x1000}, Tick{100});
    // A different (untainted) block verifies fine.
    EXPECT_FALSE(inj.checkVerify(Addr{0x5000}, Addr{0x9000}, Tick{200}).has_value());
}

// ---------------------------------------------------------- tree faults

TEST(FaultSpec, ParsesTreeKindAndRoundTrips)
{
    const auto spec = FaultSpec::parse("tree:count=2:period=100");
    ASSERT_EQ(spec.campaigns.size(), 1u);
    EXPECT_EQ(spec.campaigns[0].kind, FaultKind::TreeFlip);
    EXPECT_EQ(spec.campaigns[0].count, 2u);
    EXPECT_TRUE(faultIsIntegrity(FaultKind::TreeFlip));
    EXPECT_FALSE(faultIsTransient(FaultKind::TreeFlip));
    const auto again = FaultSpec::parse(spec.render());
    ASSERT_EQ(again.campaigns.size(), 1u);
    EXPECT_EQ(again.campaigns[0].kind, FaultKind::TreeFlip);
    // Soft mode models cold corruption awaiting a natural re-access;
    // interior nodes are re-verified on every covered access, so a
    // soft tree campaign is rejected.
    EXPECT_THROW(FaultSpec::parse("tree:soft=1"), ConfigError);
}

TEST(FaultInjector, TreeTaintSurvivesRefetchAndHealsOnCounterWrite)
{
    FaultInjector inj(FaultSpec::parse("tree:count=1:period=1"), 1);
    EXPECT_TRUE(inj.hasTreeCampaign());
    const Addr blk{0x3000}, ctr{0xb000}, node{0x70000};
    inj.onTreeNodeFetched(node, Tick{100});
    ASSERT_EQ(inj.report().injectedAll(), 1u);
    // The data/counter pair alone verifies clean; the walk fails only
    // once the tainted interior node joins the verification set.
    EXPECT_FALSE(inj.checkVerify(blk, ctr, Tick{200}).has_value());
    auto det = inj.checkVerify(blk, ctr, Tick{300}, {node});
    ASSERT_TRUE(det.has_value());
    EXPECT_EQ(det->kind, FaultKind::TreeFlip);
    EXPECT_EQ(det->addr, node);
    // Node corruption is DRAM-resident: a cache-bypassing refetch of
    // the whole covering set does not clear it ...
    inj.recoveryRefetch(blk, ctr, Tick{400}, {node});
    EXPECT_TRUE(inj.checkVerify(blk, ctr, Tick{500}, {node}).has_value());
    // ... only a counter-class DRAM write of the node heals it.
    inj.onDramWrite(node, /*counter_class=*/true, Tick{600});
    EXPECT_FALSE(
        inj.checkVerify(blk, ctr, Tick{700}, {node}).has_value());
}

// ---------------------------------------------------------- soft mode

TEST(FaultSpec, ParsesSoftKeyForPersistentIntegrityKinds)
{
    const auto spec = FaultSpec::parse("data:count=2:period=5:soft=1");
    ASSERT_EQ(spec.campaigns.size(), 1u);
    EXPECT_TRUE(spec.campaigns[0].soft);
    // render() round-trips the flag.
    const auto again = FaultSpec::parse(spec.render());
    ASSERT_EQ(again.campaigns.size(), 1u);
    EXPECT_TRUE(again.campaigns[0].soft);
    EXPECT_NE(spec.render().find(":soft=1"), std::string::npos);

    EXPECT_FALSE(FaultSpec::parse("data:soft=0").campaigns[0].soft);
    // Soft mode only makes sense for corruption that persists in DRAM
    // waiting for a natural access.
    EXPECT_THROW(FaultSpec::parse("bus:soft=1"), ConfigError);
    EXPECT_THROW(FaultSpec::parse("ctrcache:soft=1"), ConfigError);
    EXPECT_THROW(FaultSpec::parse("nocdelay:soft=1"), ConfigError);
    EXPECT_THROW(FaultSpec::parse("data:soft=2"), ConfigError);
}

TEST(FaultInjector, SoftModeTaintsColdBlockNotCurrentAccess)
{
    // period=5 guarantees the trigger lands on the second eligible
    // fetch or later, so the cold ring already holds older blocks.
    FaultInjector inj(FaultSpec::parse("data:count=1:period=5:soft=1"),
                      7);
    std::vector<Addr> touched;
    for (std::uint64_t i = 0; i < 10; ++i) {
        const Addr blk{(i + 1) * 0x1000};
        touched.push_back(blk);
        inj.onDataFetched(blk, Tick{(i + 1) * 1000});
    }
    ASSERT_EQ(inj.report().injectedAll(), 1u);
    const auto &ev = inj.report().events[0];
    EXPECT_TRUE(ev.soft);
    // The victim is the *oldest* previously-fetched block, not the
    // access that triggered the injection.
    EXPECT_EQ(ev.addr, touched[0]);
    const std::uint64_t trigger_idx = ev.injected_at.value() / 1000 - 1;
    ASSERT_GE(trigger_idx, 1u);
    EXPECT_NE(ev.addr, touched[trigger_idx]);

    // The triggering access still verifies; the cold victim fails only
    // when naturally re-accessed.
    EXPECT_FALSE(inj.checkVerify(touched[trigger_idx], Addr{0xf0000},
                                 Tick{20'000}).has_value());
    EXPECT_TRUE(inj.checkVerify(touched[0], Addr{0xf0000},
                                Tick{30'000}).has_value());
}

TEST(FaultInjector, SoftDetectionLagRecorded)
{
    FaultInjector inj(FaultSpec::parse("data:count=1:period=5:soft=1"),
                      7);
    for (std::uint64_t i = 0; i < 5; ++i)
        inj.onDataFetched(Addr{(i + 1) * 0x1000}, Tick{(i + 1) * 1000});
    ASSERT_EQ(inj.report().injectedAll(), 1u);
    EXPECT_EQ(inj.report().detect_lag_ns.count(), 0u);

    // The natural re-access arrives much later; the lag histogram gets
    // the full injection-to-detection distance exactly once.
    const Tick late = nsToTicks(5000.0);
    ASSERT_TRUE(inj.checkVerify(Addr{0x1000}, Addr{0xf0000}, late)
                    .has_value());
    EXPECT_EQ(inj.report().detect_lag_ns.count(), 1u);
    EXPECT_EQ(inj.report().detection_latency_ns.count(), 1u);
    const double lag = inj.report().detect_lag_ns.mean();
    EXPECT_GT(lag, 0.0);
    EXPECT_NEAR(lag,
                ticksToNs(late - inj.report().events[0].injected_at),
                1e-9);
    // Re-detection of the same taint must not double-book the lag.
    ASSERT_TRUE(inj.checkVerify(Addr{0x1000}, Addr{0xf0000},
                                late + Tick{1000}).has_value());
    EXPECT_EQ(inj.report().detect_lag_ns.count(), 1u);
}

// -------------------------------------------------- end-to-end through sim

WorkloadParams
tinyParams()
{
    WorkloadParams p;
    p.cores = 2;
    p.trace_len = 60'000;
    p.graph_vertices = 1 << 15;
    p.graph_degree = 8;
    p.footprint_scale = 1.0 / 32.0;
    return p;
}

SystemConfig
tinyConfig(Scheme scheme)
{
    SystemConfig cfg;
    cfg.cores = 2;
    cfg.l1_bytes = 16_KiB;
    cfg.l2_bytes = 64_KiB;
    cfg.llc_bytes = 256_KiB;
    cfg.mc_ctr_cache_bytes = 8_KiB;
    cfg.l2_ctr_cap_bytes = 4_KiB;
    cfg.data_region_bytes = 1_GiB;
    cfg.scheme = scheme;
    return cfg;
}

const WorkloadSet &
bfsWorkload()
{
    static const WorkloadSet w = buildWorkload("BFS", tinyParams());
    return w;
}

RunResults
runWithFaults(Scheme scheme, const std::string &spec,
              std::uint64_t fault_seed = 5)
{
    Simulator sim;
    SystemConfig cfg = tinyConfig(scheme);
    cfg.faults = FaultSpec::parse(spec);
    cfg.fault_seed = fault_seed;
    SecureSystem sys(sim, cfg, &bfsWorkload());
    sys.run(20'000, 40'000);
    return sys.results();
}

TEST(FaultResilience, TransientCampaignFullyRecovers)
{
    const auto r = runWithFaults(Scheme::Emcc,
                                 "bus:count=6:period=40;"
                                 "ctrcache:count=3:period=40");
    EXPECT_GT(r.faults.injectedAll(), 0u);
    // Inject-on-access activation guarantees detection at that access's
    // MAC verify: nothing stays silently pending.
    EXPECT_EQ(r.faults.detectedAll(), r.faults.injectedAll());
    EXPECT_EQ(r.faults.recoveredAll(), r.faults.detectedAll());
    EXPECT_EQ(r.faults.fatalAll(), 0u);
    EXPECT_GT(r.sys.integrity_detected, 0u);
    EXPECT_GE(r.sys.integrity_retried, r.sys.integrity_detected);
    EXPECT_EQ(r.sys.integrity_fatal, 0u);
    EXPECT_GT(r.faults.detection_latency_ns.count(), 0u);
}

TEST(FaultResilience, PersistentFaultsEscalateToFatal)
{
    const auto r = runWithFaults(Scheme::Emcc,
                                 "replay:count=1:period=20;"
                                 "data:count=1:period=30");
    EXPECT_GT(r.faults.injectedAll(), 0u);
    EXPECT_EQ(r.faults.detectedAll(), r.faults.injectedAll());
    // DRAM-resident corruption survives cache-bypassing re-fetches:
    // the bounded retry budget must escalate (fail-stop, not silent).
    EXPECT_GT(r.faults.fatalAll(), 0u);
    EXPECT_GT(r.sys.integrity_fatal, 0u);
}

TEST(FaultResilience, TreeCampaignDetectsThroughMultiLevelReverify)
{
    // One taint: two tainted ancestors of the same hot region would
    // shadow each other (checkVerify reports the earliest injection).
    const auto r = runWithFaults(Scheme::Emcc, "tree:count=1:period=20");
    EXPECT_EQ(r.faults.injectedAll(), 1u);
    // A tainted interior node fails the very walk that fetched it: the
    // verification set spans every covering level.
    EXPECT_EQ(r.faults.detectedAll(), r.faults.injectedAll());
    EXPECT_GT(r.sys.integrity_detected, 0u);
    // Recovery re-fetches + re-verifies the whole covering node set,
    // and the DRAM-resident flip survives the bounded retry budget.
    EXPECT_GT(r.sys.integrity_retried, 0u);
    EXPECT_GT(r.faults.fatalAll(), 0u);
    EXPECT_GT(r.sys.integrity_fatal, 0u);
}

TEST(FaultResilience, McOnlySchemeAlsoDetects)
{
    const auto r = runWithFaults(Scheme::McOnly, "bus:count=4:period=40");
    EXPECT_GT(r.faults.injectedAll(), 0u);
    EXPECT_EQ(r.faults.detectedAll(), r.faults.injectedAll());
    EXPECT_EQ(r.faults.fatalAll(), 0u);
}

TEST(FaultResilience, SoftCampaignDetectsOnNaturalReaccess)
{
    const auto r = runWithFaults(Scheme::Emcc,
                                 "data:count=3:period=50:soft=1");
    EXPECT_GT(r.faults.injectedAll(), 0u);
    // Soft taints sit on cold blocks: unlike inject-on-access, nothing
    // guarantees a re-access inside the window, so detection is <=
    // injection — but every detection must log exactly one lag sample.
    EXPECT_LE(r.faults.detectedAll(), r.faults.injectedAll());
    EXPECT_EQ(r.faults.detect_lag_ns.count(), r.faults.detectedAll());
    for (const auto &ev : r.faults.events)
        EXPECT_TRUE(ev.soft);
}

TEST(FaultResilience, IdenticalSeedsGiveIdenticalRuns)
{
    const std::string spec =
        "bus:count=5:period=50;replay:count=1;nocdelay:prob=0.01";
    const auto a = runWithFaults(Scheme::Emcc, spec, 11);
    const auto b = runWithFaults(Scheme::Emcc, spec, 11);
    EXPECT_EQ(a.faults.injectedAll(), b.faults.injectedAll());
    EXPECT_EQ(a.faults.recoveredAll(), b.faults.recoveredAll());
    EXPECT_EQ(a.faults.fatalAll(), b.faults.fatalAll());
    EXPECT_EQ(a.sys.integrity_retried, b.sys.integrity_retried);
    EXPECT_DOUBLE_EQ(a.total_ipc, b.total_ipc);
    EXPECT_DOUBLE_EQ(a.duration_ns, b.duration_ns);
    const auto ssa = a.toStatSet(), ssb = b.toStatSet();
    ASSERT_EQ(ssa.all().size(), ssb.all().size());
    auto ita = ssa.all().begin();
    for (const auto &[key, val] : ssb.all()) {
        EXPECT_EQ(ita->first, key);
        EXPECT_DOUBLE_EQ(ita->second, val) << key;
        ++ita;
    }
}

TEST(FaultResilience, StrictModeThrowsIntegrityViolation)
{
    Simulator sim;
    SystemConfig cfg = tinyConfig(Scheme::Emcc);
    cfg.faults = FaultSpec::parse("replay:count=1:period=20");
    cfg.fault_strict = true;
    SecureSystem sys(sim, cfg, &bfsWorkload());
    EXPECT_THROW(sys.run(20'000, 40'000), IntegrityViolation);
}

TEST(FaultResilience, TimingFaultsPerturbWithoutIntegrityEvents)
{
    const auto r = runWithFaults(Scheme::Emcc,
                                 "nocdelay:prob=0.05;aesstall:prob=0.05");
    EXPECT_GT(r.faults.noc_delays + r.faults.aes_stalls, 0u);
    EXPECT_GT(r.faults.extra_noc_ns + r.faults.extra_aes_ns, 0.0);
    // Pure timing perturbations never corrupt state: no MAC failures,
    // no recovery traffic.
    EXPECT_EQ(r.faults.detectedAll(), 0u);
    EXPECT_EQ(r.faults.fatalAll(), 0u);
    EXPECT_EQ(r.sys.integrity_detected, 0u);
    EXPECT_EQ(r.sys.integrity_retried, 0u);
}

TEST(FaultResilience, CleanRunPassesLeakCheck)
{
    for (Scheme s : {Scheme::NonSecure, Scheme::McOnly,
                     Scheme::LlcBaseline, Scheme::Emcc}) {
        Simulator sim;
        SystemConfig cfg = tinyConfig(s);
        SecureSystem sys(sim, cfg, &bfsWorkload());
        sys.run(10'000, 20'000);
        EXPECT_TRUE(sys.results().leaks.clean())
            << schemeName(s) << ": " << sys.results().leaks.render();
    }
}

TEST(FaultResilience, CampaignRunPassesLeakCheck)
{
    const auto r = runWithFaults(Scheme::Emcc,
                                 "bus:count=6:period=40;replay:count=1");
    EXPECT_TRUE(r.leaks.clean()) << r.leaks.render();
}

// --------------------------------------------------------------- watchdog

TEST(Watchdog, FiresOnStalledProgressWithDiagnostics)
{
    Simulator sim;
    Watchdog wd(sim, "wd", nsToTicks(100.0), [] { return Count{7}; });
    wd.addDiagnostic("stuck-component",
                     [] { return std::string("state=wedged"); });
    // A self-rescheduling event advances simulated time while the
    // progress counter stays flat — the lost-callback signature.
    std::function<void()> tick = [&] {
        sim.postIn(nsToTicks(10.0), tick);
    };
    sim.postIn(nsToTicks(10.0), tick);
    wd.start();
    EXPECT_TRUE(wd.armed());
    try {
        sim.run(nsToTicks(100'000.0));
        FAIL() << "watchdog did not fire";
    } catch (const WatchdogTimeout &e) {
        EXPECT_NE(std::string(e.what()).find("no forward progress"),
                  std::string::npos);
        EXPECT_NE(e.diagnostics().find("stuck-component"),
                  std::string::npos);
        EXPECT_NE(e.diagnostics().find("state=wedged"), std::string::npos);
    }
}

TEST(Watchdog, StaysQuietWhileProgressing)
{
    Simulator sim;
    Count progress = 0;
    Watchdog wd(sim, "wd", nsToTicks(100.0), [&] { return progress; });
    std::function<void()> tick = [&] {
        ++progress;
        sim.postIn(nsToTicks(10.0), tick);
    };
    sim.postIn(nsToTicks(10.0), tick);
    wd.start();
    sim.run(nsToTicks(5'000.0));
    wd.stop();
    EXPECT_FALSE(wd.armed());
    EXPECT_GT(wd.checks(), 5u);
}

TEST(Watchdog, SystemRunWithWatchdogCompletes)
{
    Simulator sim;
    SystemConfig cfg = tinyConfig(Scheme::Emcc);
    cfg.watchdog_window = nsToTicks(50'000.0);
    SecureSystem sys(sim, cfg, &bfsWorkload());
    sys.run(10'000, 20'000);
    ASSERT_NE(sys.watchdog(), nullptr);
    EXPECT_FALSE(sys.watchdog()->armed());   // stopped after the run
    EXPECT_GT(sys.results().total_ipc, 0.0);
}

TEST(Watchdog, WedgeReportSnapshotsCoreState)
{
    // The system registers a per-core diagnostic; a wedge report must
    // show ROB and write-buffer occupancy against their limits for
    // every core, not just queue depths.
    Simulator sim;
    SystemConfig cfg = tinyConfig(Scheme::Emcc);
    cfg.watchdog_window = nsToTicks(50'000.0);
    SecureSystem sys(sim, cfg, &bfsWorkload());
    ASSERT_NE(sys.watchdog(), nullptr);
    const std::string diag = sys.watchdog()->diagnostics();
    EXPECT_NE(diag.find("cores"), std::string::npos) << diag;
    for (unsigned c = 0; c < cfg.cores; ++c) {
        const std::string rob = detail::format(
            "core %u ROB 0/%u", c, cfg.core.rob_entries);
        EXPECT_NE(diag.find(rob), std::string::npos) << diag;
        const std::string wb = detail::format(
            "WB 0/%u", cfg.core.max_outstanding_stores);
        EXPECT_NE(diag.find(wb), std::string::npos) << diag;
    }
    EXPECT_NE(diag.find("loads in flight"), std::string::npos) << diag;

    // Mid-run the snapshot reflects live occupancy (run a short window
    // and re-render: the renderer must not throw and still lists every
    // core).
    sys.run(2'000, 4'000);
    const std::string after = sys.watchdog()->diagnostics();
    EXPECT_NE(after.find("core 0 ROB"), std::string::npos);
}

// ----------------------------------------------- recoverable config errors

TEST(FaultConfig, ValidateThrowsConfigErrorInsteadOfAborting)
{
    SystemConfig cfg;
    cfg.cores = 0;
    EXPECT_THROW(cfg.validate(), ConfigError);
    cfg = SystemConfig{};
    cfg.dram.channels = 3;
    EXPECT_THROW(cfg.validate(), ConfigError);
    cfg = SystemConfig{};
    cfg.l2_aes_fraction = 1.5;
    EXPECT_THROW(cfg.validate(), ConfigError);
    cfg = SystemConfig{};
    EXPECT_NO_THROW(cfg.validate());
}

TEST(FaultConfig, ParseHelpersThrowConfigError)
{
    EXPECT_THROW(parseScheme("bogus"), ConfigError);
    EXPECT_THROW(parseCounterDesign("bogus"), ConfigError);
    EXPECT_EQ(parseScheme("emcc"), Scheme::Emcc);
    EXPECT_EQ(parseCounterDesign("sc64"), CounterDesignKind::Sc64);
}

TEST(FaultConfig, CliStyleErrorPathExitsCleanly)
{
    // The emcc_sim driver catches ConfigError, prints the message and
    // exits 2 — never SIGABRT. Model that exact path in a death test.
    EXPECT_EXIT(
        {
            try {
                SystemConfig cfg;
                cfg.cores = 99;
                cfg.validate();
            } catch (const ConfigError &e) {
                std::fprintf(stderr, "%s\n", e.what());
                std::exit(2);
            }
            std::exit(0);
        },
        ::testing::ExitedWithCode(2), "cores");
}

} // namespace
} // namespace emcc

/**
 * @file
 * Tests for FlatAddrMap, the open-addressing hot-path side table.
 *
 * The map backs per-core bookkeeping in SecureSystem (pending store
 * fills, in-flight counters, counter-usefulness state), so its
 * semantics must match the std::unordered_map calls it replaced:
 * emplace never overwrites, erase reports presence, find returns
 * null on miss. The randomized section cross-checks against
 * std::unordered_map through long insert/erase streams to exercise
 * tombstone reuse and rehash.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <unordered_map>
#include <vector>

#include "common/flat_map.hh"
#include "common/types.hh"

namespace emcc {
namespace {

Addr
blockAddr(std::uint64_t n)
{
    return Addr{n * kBlockBytes};
}

TEST(FlatAddrMap, EmptyFindAndErase)
{
    FlatAddrMap<int> m;
    EXPECT_TRUE(m.empty());
    EXPECT_EQ(m.find(blockAddr(3)), nullptr);
    EXPECT_FALSE(m.contains(blockAddr(3)));
    EXPECT_FALSE(m.erase(blockAddr(3)));
    EXPECT_EQ(m.size(), 0u);
}

TEST(FlatAddrMap, EmplaceDoesNotOverwrite)
{
    FlatAddrMap<int> m;
    EXPECT_TRUE(m.emplace(blockAddr(7), 1));
    EXPECT_FALSE(m.emplace(blockAddr(7), 2));   // already present
    ASSERT_NE(m.find(blockAddr(7)), nullptr);
    EXPECT_EQ(*m.find(blockAddr(7)), 1);        // first value kept
    EXPECT_EQ(m.size(), 1u);
}

TEST(FlatAddrMap, SubscriptInsertsDefaultAndAllowsWrite)
{
    FlatAddrMap<Tick> m;
    EXPECT_EQ(m[blockAddr(5)], Tick{});
    m[blockAddr(5)] = Tick{42};
    EXPECT_EQ(m[blockAddr(5)], Tick{42});
    EXPECT_EQ(m.size(), 1u);
}

TEST(FlatAddrMap, EraseThenReinsert)
{
    FlatAddrMap<bool> m;
    const Addr a = blockAddr(11);
    m.emplace(a, true);
    EXPECT_TRUE(m.erase(a));
    EXPECT_FALSE(m.contains(a));
    EXPECT_FALSE(m.erase(a));
    // The tombstone left behind must be reusable.
    EXPECT_TRUE(m.emplace(a, false));
    ASSERT_NE(m.find(a), nullptr);
    EXPECT_FALSE(*m.find(a));
    EXPECT_EQ(m.size(), 1u);
}

TEST(FlatAddrMap, GrowsPastInitialCapacity)
{
    FlatAddrMap<std::uint64_t> m;
    for (std::uint64_t i = 0; i < 1000; ++i)
        ASSERT_TRUE(m.emplace(blockAddr(i), i));
    EXPECT_EQ(m.size(), 1000u);
    for (std::uint64_t i = 0; i < 1000; ++i) {
        const std::uint64_t *v = m.find(blockAddr(i));
        ASSERT_NE(v, nullptr) << "key " << i;
        EXPECT_EQ(*v, i);
    }
    EXPECT_FALSE(m.contains(blockAddr(1000)));
}

TEST(FlatAddrMap, ChurnDoesNotGrowUnbounded)
{
    // Steady-state insert/erase (the hot pattern for the in-flight
    // tables): tombstone recycling must keep lookups correct through
    // many generations of the same small key set.
    FlatAddrMap<int> m;
    for (int round = 0; round < 10'000; ++round) {
        const Addr a = blockAddr(static_cast<std::uint64_t>(round % 8));
        ASSERT_TRUE(m.emplace(a, round));
        ASSERT_TRUE(m.erase(a));
    }
    EXPECT_TRUE(m.empty());
}

TEST(FlatAddrMap, RandomStreamMatchesUnorderedMap)
{
    std::mt19937_64 rng(0xf1a7u);
    FlatAddrMap<std::uint32_t> dut;
    std::unordered_map<std::uint64_t, std::uint32_t> ref;
    // Small key space forces heavy collision/tombstone traffic.
    const std::uint64_t key_space = 64;

    for (int op = 0; op < 50'000; ++op) {
        const std::uint64_t k = rng() % key_space;
        const Addr a = blockAddr(k);
        switch (rng() % 4) {
          case 0: {
            const auto val = static_cast<std::uint32_t>(op);
            EXPECT_EQ(dut.emplace(a, val), ref.emplace(k, val).second);
            break;
          }
          case 1:
            EXPECT_EQ(dut.erase(a), ref.erase(k) > 0);
            break;
          case 2: {
            const std::uint32_t *v = dut.find(a);
            const auto it = ref.find(k);
            if (it == ref.end()) {
                EXPECT_EQ(v, nullptr) << "key " << k << " op " << op;
            } else {
                ASSERT_NE(v, nullptr) << "key " << k << " op " << op;
                EXPECT_EQ(*v, it->second);
            }
            break;
          }
          default:
            EXPECT_EQ(dut.contains(a), ref.count(k) > 0);
            break;
        }
        ASSERT_EQ(dut.size(), ref.size()) << "op " << op;
    }
}

} // namespace
} // namespace emcc

/**
 * @file
 * Unit tests for the common infrastructure: types/units, RNG,
 * histograms, statistics helpers, and the table printer.
 */

#include <gtest/gtest.h>

#include <set>

#include "common/histogram.hh"
#include "common/rng.hh"
#include "common/stats.hh"
#include "common/table.hh"
#include "common/types.hh"

namespace emcc {
namespace {

TEST(Types, TickConversionsRoundTrip)
{
    EXPECT_EQ(nsToTicks(13.75), Tick{13750});
    EXPECT_EQ(nsToTicks(0.3125), Tick{313});   // rounds
    EXPECT_DOUBLE_EQ(ticksToNs(Tick{23000}), 23.0);
}

TEST(Types, BlockAlignment)
{
    EXPECT_EQ(blockAlign(Addr{0}), Addr{0});
    EXPECT_EQ(blockAlign(Addr{63}), Addr{0});
    EXPECT_EQ(blockAlign(Addr{64}), Addr{64});
    EXPECT_EQ(blockAlign(Addr{130}), Addr{128});
    EXPECT_EQ(blockNumber(Addr{128}), BlockNum{2});
    EXPECT_EQ(blockBase(BlockNum{2}), Addr{128});
}

TEST(Types, UnitsAndLog2)
{
    EXPECT_EQ(1_KiB, 1024u);
    EXPECT_EQ(2_MiB, 2u * 1024 * 1024);
    EXPECT_EQ(1_GiB, 1024ull * 1024 * 1024);
    EXPECT_EQ(floorLog2(1), 0u);
    EXPECT_EQ(floorLog2(64), 6u);
    EXPECT_EQ(floorLog2(65), 6u);
    EXPECT_TRUE(isPowerOf2(4096));
    EXPECT_FALSE(isPowerOf2(4097));
    EXPECT_FALSE(isPowerOf2(0));
}

TEST(Rng, Deterministic)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += (a.next() == b.next());
    EXPECT_LT(same, 2);
}

TEST(Rng, BelowIsInRange)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(rng.below(17), 17u);
}

TEST(Rng, BelowCoversAllValues)
{
    Rng rng(9);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 2000; ++i)
        seen.insert(rng.below(8));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(11);
    double sum = 0.0;
    for (int i = 0; i < 20000; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 20000.0, 0.5, 0.02);
}

TEST(Rng, RangeInclusive)
{
    Rng rng(13);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 5000; ++i) {
        const auto v = rng.range(3, 5);
        ASSERT_GE(v, 3u);
        ASSERT_LE(v, 5u);
        saw_lo |= (v == 3);
        saw_hi |= (v == 5);
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Histogram, BinningAndMean)
{
    Histogram h(0.0, 10.0, 10);
    h.add(0.5);
    h.add(1.5);
    h.add(1.7);
    h.add(9.9);
    EXPECT_EQ(h.count(), 4u);
    EXPECT_EQ(h.binCount(0), 1u);
    EXPECT_EQ(h.binCount(1), 2u);
    EXPECT_EQ(h.binCount(9), 1u);
    EXPECT_NEAR(h.mean(), (0.5 + 1.5 + 1.7 + 9.9) / 4.0, 1e-9);
    EXPECT_DOUBLE_EQ(h.min(), 0.5);
    EXPECT_DOUBLE_EQ(h.max(), 9.9);
}

TEST(Histogram, UnderOverflow)
{
    Histogram h(10.0, 20.0, 5);
    h.add(5.0);
    h.add(25.0);
    h.add(15.0);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 1u);
    EXPECT_EQ(h.binCount(2), 1u);
}

TEST(Histogram, Weights)
{
    Histogram h(0.0, 4.0, 4);
    h.add(1.5, 3);
    EXPECT_EQ(h.count(), 3u);
    EXPECT_EQ(h.binCount(1), 3u);
    EXPECT_DOUBLE_EQ(h.binFraction(1), 1.0);
}

TEST(Histogram, PercentileMonotonic)
{
    Histogram h(0.0, 100.0, 100);
    for (int i = 0; i < 100; ++i)
        h.add(i + 0.5);
    EXPECT_LE(h.percentile(10), h.percentile(50));
    EXPECT_LE(h.percentile(50), h.percentile(90));
    EXPECT_NEAR(h.percentile(50), 50.0, 2.0);
}

TEST(Histogram, ResetClears)
{
    Histogram h(0.0, 10.0, 10);
    h.add(5.0);
    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST(Histogram, EmptyPercentileIsZero)
{
    Histogram h(0.0, 10.0, 10);
    EXPECT_DOUBLE_EQ(h.percentile(0), 0.0);
    EXPECT_DOUBLE_EQ(h.percentile(50), 0.0);
    EXPECT_DOUBLE_EQ(h.percentile(100), 0.0);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
    EXPECT_DOUBLE_EQ(h.min(), 0.0);
    EXPECT_DOUBLE_EQ(h.max(), 0.0);
}

TEST(Histogram, SingleSample)
{
    Histogram h(0.0, 10.0, 10);
    h.add(3.7);
    EXPECT_EQ(h.count(), 1u);
    EXPECT_DOUBLE_EQ(h.mean(), 3.7);
    EXPECT_DOUBLE_EQ(h.min(), 3.7);
    EXPECT_DOUBLE_EQ(h.max(), 3.7);
    // Every percentile of a one-sample distribution lands in its bin.
    EXPECT_LE(h.percentile(1), 4.0);
    EXPECT_GE(h.percentile(99), 3.0);
}

TEST(Histogram, OverflowSamplesCountButStayOutOfBins)
{
    Histogram h(0.0, 10.0, 5);
    h.add(-1.0);
    h.add(100.0);
    h.add(100.0);
    EXPECT_EQ(h.count(), 3u);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 2u);
    Count binned = 0;
    for (unsigned i = 0; i < h.numBins(); ++i)
        binned += h.binCount(i);
    EXPECT_EQ(binned, 0u);
    // Out-of-range samples still shape mean/min/max.
    EXPECT_DOUBLE_EQ(h.min(), -1.0);
    EXPECT_DOUBLE_EQ(h.max(), 100.0);
    EXPECT_NEAR(h.mean(), 199.0 / 3.0, 1e-9);
}

TEST(Histogram, MergeAddsCountsAndExtremes)
{
    Histogram a(0.0, 10.0, 10);
    Histogram b(0.0, 10.0, 10);
    a.add(1.5);
    a.add(12.0);       // overflow
    b.add(2.5);
    b.add(2.6);
    b.add(-3.0);       // underflow
    a.merge(b);
    EXPECT_EQ(a.count(), 5u);
    EXPECT_EQ(a.binCount(1), 1u);
    EXPECT_EQ(a.binCount(2), 2u);
    EXPECT_EQ(a.underflow(), 1u);
    EXPECT_EQ(a.overflow(), 1u);
    EXPECT_DOUBLE_EQ(a.min(), -3.0);
    EXPECT_DOUBLE_EQ(a.max(), 12.0);
    EXPECT_NEAR(a.mean(), (1.5 + 12.0 + 2.5 + 2.6 - 3.0) / 5.0, 1e-9);
}

TEST(Histogram, MergeEmptySidesPreserveExtremes)
{
    Histogram a(0.0, 10.0, 10);
    Histogram b(0.0, 10.0, 10);
    // Empty other: a no-op, even for min/max.
    a.add(4.0);
    a.merge(b);
    EXPECT_EQ(a.count(), 1u);
    EXPECT_DOUBLE_EQ(a.min(), 4.0);
    EXPECT_DOUBLE_EQ(a.max(), 4.0);
    // Empty self: adopts the other's extremes instead of mixing in the
    // empty-state zeros.
    Histogram c(0.0, 10.0, 10);
    c.merge(a);
    EXPECT_EQ(c.count(), 1u);
    EXPECT_DOUBLE_EQ(c.min(), 4.0);
    EXPECT_DOUBLE_EQ(c.max(), 4.0);
}

TEST(HistogramDeathTest, MergeMismatchedBinningPanics)
{
    Histogram a(0.0, 10.0, 10);
    Histogram b(0.0, 20.0, 10);
    Histogram c(0.0, 10.0, 5);
    EXPECT_DEATH(a.merge(b), "mismatched");
    EXPECT_DEATH(a.merge(c), "mismatched");
}

TEST(Stats, AverageBasics)
{
    Average a;
    EXPECT_DOUBLE_EQ(a.mean(), 0.0);
    a.add(2.0);
    a.add(4.0);
    EXPECT_DOUBLE_EQ(a.mean(), 3.0);
    EXPECT_EQ(a.count(), 2u);
    a.add(10.0, 2);
    EXPECT_DOUBLE_EQ(a.mean(), (2.0 + 4.0 + 20.0) / 4.0);
}

TEST(Stats, SafeRatio)
{
    EXPECT_DOUBLE_EQ(safeRatio(1.0, 0.0), 0.0);
    EXPECT_DOUBLE_EQ(safeRatio(3.0, 2.0), 1.5);
}

TEST(Stats, GeoMean)
{
    EXPECT_DOUBLE_EQ(geoMean({}), 0.0);
    EXPECT_NEAR(geoMean({2.0, 8.0}), 4.0, 1e-9);
    EXPECT_DOUBLE_EQ(geoMean({1.0, 0.0}), 0.0);
}

TEST(Stats, StatSetMerge)
{
    StatSet a, b;
    a.set("x", 1.0);
    b.set("x", 2.0);
    b.set("y", 5.0);
    a.merge(b);
    EXPECT_DOUBLE_EQ(a.get("x"), 3.0);
    EXPECT_DOUBLE_EQ(a.get("y"), 5.0);
    EXPECT_DOUBLE_EQ(a.get("missing"), 0.0);
    EXPECT_TRUE(a.has("y"));
    EXPECT_FALSE(a.has("z"));
}

TEST(Table, RendersAlignedColumns)
{
    Table t({"name", "value"});
    t.addRow({"a", "1.00"});
    t.addRow({"longer", "2.50"});
    const std::string out = t.render();
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("longer"), std::string::npos);
    EXPECT_NE(out.find("2.50"), std::string::npos);
}

TEST(Table, Formatters)
{
    EXPECT_EQ(Table::num(1.234, 2), "1.23");
    EXPECT_EQ(Table::pct(0.072, 1), "7.2%");
}

} // namespace
} // namespace emcc

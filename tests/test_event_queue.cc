/**
 * @file
 * Unit tests for the event queue: ordering, priorities, cancellation,
 * time limits, and the Simulator/Component plumbing.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/simulator.hh"

namespace emcc {
namespace {

TEST(EventQueue, ExecutesInTimeOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(Tick{30}, [&] { order.push_back(3); });
    q.schedule(Tick{10}, [&] { order.push_back(1); });
    q.schedule(Tick{20}, [&] { order.push_back(2); });
    q.runAll();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(q.now(), 30u);
}

TEST(EventQueue, FifoAtSameTick)
{
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 5; ++i)
        q.schedule(Tick{10}, [&, i] { order.push_back(i); });
    q.runAll();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, PriorityBreaksTies)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(Tick{10}, [&] { order.push_back(1); }, /*priority=*/1);
    q.schedule(Tick{10}, [&] { order.push_back(0); }, /*priority=*/0);
    q.runAll();
    EXPECT_EQ(order, (std::vector<int>{0, 1}));
}

TEST(EventQueue, DescheduleCancels)
{
    EventQueue q;
    bool ran = false;
    const EventId id = q.schedule(Tick{10}, [&] { ran = true; });
    EXPECT_TRUE(q.deschedule(id));
    EXPECT_FALSE(q.deschedule(id));   // double-cancel is a no-op
    q.runAll();
    EXPECT_FALSE(ran);
    EXPECT_EQ(q.pending(), 0u);
}

TEST(EventQueue, RunUntilStopsAtLimit)
{
    EventQueue q;
    int count = 0;
    q.schedule(Tick{10}, [&] { ++count; });
    q.schedule(Tick{20}, [&] { ++count; });
    q.schedule(Tick{30}, [&] { ++count; });
    EXPECT_EQ(q.runUntil(Tick{20}), 2u);
    EXPECT_EQ(count, 2);
    EXPECT_EQ(q.pending(), 1u);
    EXPECT_EQ(q.nextEventTick(), 30u);
}

TEST(EventQueue, EventsCanScheduleEvents)
{
    EventQueue q;
    int depth = 0;
    std::function<void()> recurse = [&] {
        if (++depth < 5)
            q.scheduleIn(Tick{10}, recurse);
    };
    q.schedule(Tick{0}, recurse);
    q.runAll();
    EXPECT_EQ(depth, 5);
    EXPECT_EQ(q.now(), 40u);
}

TEST(EventQueue, SchedulingInThePastPanics)
{
    EventQueue q;
    q.schedule(Tick{100}, [] {});
    q.runAll();
    EXPECT_DEATH(q.schedule(Tick{50}, [] {}), "past");
}

TEST(EventQueue, StepReturnsFalseWhenEmpty)
{
    EventQueue q;
    EXPECT_FALSE(q.step());
    q.schedule(Tick{5}, [] {});
    EXPECT_TRUE(q.step());
    EXPECT_FALSE(q.step());
}

TEST(EventQueue, PendingCountsLiveEvents)
{
    EventQueue q;
    const EventId a = q.schedule(Tick{10}, [] {});
    q.schedule(Tick{20}, [] {});
    EXPECT_EQ(q.pending(), 2u);
    q.deschedule(a);
    EXPECT_EQ(q.pending(), 1u);
    EXPECT_FALSE(q.empty());
}

TEST(Simulator, ComponentSeesTime)
{
    Simulator sim;
    struct Probe : Component
    {
        using Component::Component;
        Tick seen{};
    } probe(sim, "probe");

    sim.schedule(Tick{123}, [&] { probe.seen = probe.curTick(); });
    sim.run();
    EXPECT_EQ(probe.seen, 123u);
    EXPECT_EQ(probe.name(), "probe");
}

TEST(Simulator, RunWithLimit)
{
    Simulator sim;
    int count = 0;
    sim.schedule(Tick{10}, [&] { ++count; });
    sim.schedule(Tick{1000}, [&] { ++count; });
    sim.run(Tick{500});
    EXPECT_EQ(count, 1);
}

} // namespace
} // namespace emcc

/**
 * @file
 * Unit tests for the event queue: ordering, priorities, cancellation,
 * time limits, and the Simulator/Component plumbing — plus the
 * allocation-free-kernel guarantees: steady-state schedule/execute/
 * deschedule cycles perform no heap allocation, equal-tick FIFO holds
 * across the timing-wheel/heap boundary, cancelled pooled entries are
 * recycled with a generation bump, max_pending stays exact without the
 * old liveness hash set, and a seeded differential test pins the new
 * kernel's execution order against the legacy std::function kernel.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <new>
#include <vector>

#include "common/rng.hh"
#include "sim/legacy_event_queue.hh"
#include "sim/simulator.hh"

// Count every scalar heap allocation in this test binary so the
// no-allocation-on-the-hot-path contract is asserted, not assumed.
// (Counting replacements are conformant; ASan still intercepts the
// underlying malloc/free. GCC pairs new-expressions with the free()
// inside these replacements and warns spuriously — malloc/free is the
// matched pair here.)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
static std::uint64_t g_heap_allocs = 0;

void *
operator new(std::size_t n)
{
    ++g_heap_allocs;
    if (void *p = std::malloc(n))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](std::size_t n)
{
    ++g_heap_allocs;
    if (void *p = std::malloc(n))
        return p;
    throw std::bad_alloc();
}

void operator delete(void *p) noexcept { std::free(p); }
// emcc-lint: allow(raw-new) — counting replacement, not a call site
void operator delete[](void *p) noexcept { std::free(p); }
void operator delete(void *p, std::size_t) noexcept { std::free(p); }
// emcc-lint: allow(raw-new) — counting replacement, not a call site
void operator delete[](void *p, std::size_t) noexcept { std::free(p); }

namespace emcc {
namespace {

TEST(EventQueue, ExecutesInTimeOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.post(Tick{30}, [&] { order.push_back(3); });
    q.post(Tick{10}, [&] { order.push_back(1); });
    q.post(Tick{20}, [&] { order.push_back(2); });
    q.runAll();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(q.now(), 30u);
}

TEST(EventQueue, FifoAtSameTick)
{
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 5; ++i)
        q.post(Tick{10}, [&, i] { order.push_back(i); });
    q.runAll();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, PriorityBreaksTies)
{
    EventQueue q;
    std::vector<int> order;
    q.post(Tick{10}, [&] { order.push_back(1); }, /*priority=*/1);
    q.post(Tick{10}, [&] { order.push_back(0); }, /*priority=*/0);
    q.runAll();
    EXPECT_EQ(order, (std::vector<int>{0, 1}));
}

TEST(EventQueue, DescheduleCancels)
{
    EventQueue q;
    bool ran = false;
    const EventId id = q.schedule(Tick{10}, [&] { ran = true; });
    EXPECT_TRUE(q.deschedule(id));
    EXPECT_FALSE(q.deschedule(id));   // double-cancel is a no-op
    q.runAll();
    EXPECT_FALSE(ran);
    EXPECT_EQ(q.pending(), 0u);
}

TEST(EventQueue, RunUntilStopsAtLimit)
{
    EventQueue q;
    int count = 0;
    q.post(Tick{10}, [&] { ++count; });
    q.post(Tick{20}, [&] { ++count; });
    q.post(Tick{30}, [&] { ++count; });
    EXPECT_EQ(q.runUntil(Tick{20}), 2u);
    EXPECT_EQ(count, 2);
    EXPECT_EQ(q.pending(), 1u);
    EXPECT_EQ(q.nextEventTick(), 30u);
}

TEST(EventQueue, EventsCanScheduleEvents)
{
    EventQueue q;
    int depth = 0;
    std::function<void()> recurse = [&] {
        if (++depth < 5)
            q.postIn(Tick{10}, recurse);
    };
    q.post(Tick{0}, recurse);
    q.runAll();
    EXPECT_EQ(depth, 5);
    EXPECT_EQ(q.now(), 40u);
}

TEST(EventQueue, SchedulingInThePastPanics)
{
    EventQueue q;
    q.post(Tick{100}, [] {});
    q.runAll();
    EXPECT_DEATH(q.post(Tick{50}, [] {}), "past");
}

TEST(EventQueue, StepReturnsFalseWhenEmpty)
{
    EventQueue q;
    EXPECT_FALSE(q.step());
    q.post(Tick{5}, [] {});
    EXPECT_TRUE(q.step());
    EXPECT_FALSE(q.step());
}

TEST(EventQueue, PendingCountsLiveEvents)
{
    EventQueue q;
    const EventId a = q.schedule(Tick{10}, [] {});
    q.post(Tick{20}, [] {});
    EXPECT_EQ(q.pending(), 2u);
    q.deschedule(a);
    EXPECT_EQ(q.pending(), 1u);
    EXPECT_FALSE(q.empty());
}

// ---------------------------------------------------------------------
// Allocation-free kernel guarantees.

TEST(EventQueue, HotPathDoesNotAllocate)
{
    EventQueue q;
    std::uint64_t executed = 0;
    // Warm the pool, wheel and overflow-heap vector to the run's
    // high-water mark: the kernel's promise is allocation-free in the
    // *steady state*, after the structures have grown once.
    std::vector<EventId> ids;
    for (int i = 0; i < 512; ++i) {
        ids.push_back(q.scheduleIn(Tick{static_cast<std::uint64_t>(
                                        100 + i * 7)},
                                   [&executed] { ++executed; }));
        // Every 4th event goes far enough out to exercise the heap.
        q.postIn(Tick{(std::uint64_t{1} << 17) +
                          static_cast<std::uint64_t>(i)},
                     [&executed] { ++executed; });
    }
    for (std::size_t i = 0; i < ids.size(); i += 2)
        q.deschedule(ids[i]);
    q.runAll();

    // Measurement window: a realistic closure (pointer + scalars), the
    // full schedule -> deschedule -> schedule -> execute cycle, both
    // wheel and heap placement. Zero allocations allowed.
    const std::uint64_t before = g_heap_allocs;
    for (int round = 0; round < 64; ++round) {
        EventId cancel_me = kEventInvalid;
        for (int i = 0; i < 256; ++i) {
            const std::uint64_t d = 1 + (i * 37) % 60000;
            const EventId id = q.scheduleIn(
                Tick{d}, [&executed, d] { executed += d & 1; },
                /*priority=*/i % 3);
            if (i % 5 == 0)
                cancel_me = id;
            if (i % 4 == 0) {
                q.postIn(Tick{(std::uint64_t{1} << 16) + d},
                             [&executed] { ++executed; });
            }
        }
        q.deschedule(cancel_me);
        q.runAll();
    }
    EXPECT_EQ(g_heap_allocs, before)
        << "the steady-state schedule/execute/deschedule cycle allocated";
    EXPECT_GT(executed, 0u);
}

TEST(EventQueue, FifoAcrossWheelHeapBoundary)
{
    EventQueue q;
    const Tick::rep span = q.wheelSpan();
    std::vector<int> order;
    // First event lands beyond the wheel horizon -> overflow heap.
    const Tick target{span + 1000};
    q.post(target, [&] { order.push_back(0); });
    // Advance close to the target, then schedule two more events at the
    // exact same tick and priority; these are now within the horizon
    // and go to the wheel. FIFO demands heap-resident event 0 runs
    // first even though the wheel is checked first on the pop path.
    q.post(Tick{span}, [&] {
        q.post(target, [&] { order.push_back(1); });
        q.post(target, [&] { order.push_back(2); });
    });
    // And a lower-priority-value (i.e. earlier-running) wheel event at
    // the same tick must still beat all of them.
    q.post(Tick{span}, [&] {
        q.post(target, [&] { order.push_back(3); }, /*priority=*/-1);
    });
    q.runAll();
    EXPECT_EQ(order, (std::vector<int>{3, 0, 1, 2}));
}

TEST(EventQueue, DescheduleOfExecutedEventIsNoOp)
{
    EventQueue q;
    int runs = 0;
    const EventId id = q.schedule(Tick{10}, [&] { ++runs; });
    EXPECT_TRUE(q.step());
    EXPECT_EQ(runs, 1);
    // The handle is stale: nothing to cancel, stats untouched.
    EXPECT_FALSE(q.deschedule(id));
    EXPECT_EQ(q.stats().cancelled, 0u);
    EXPECT_EQ(q.pending(), 0u);
}

TEST(EventQueue, DescheduleFromInsideOwnCallbackIsNoOp)
{
    EventQueue q;
    EventId self = kEventInvalid;
    bool cancelled = true;
    self = q.schedule(Tick{10}, [&] { cancelled = q.deschedule(self); });
    q.runAll();
    EXPECT_FALSE(cancelled);
    EXPECT_EQ(q.stats().cancelled, 0u);
    EXPECT_EQ(q.stats().executed, 1u);
}

TEST(EventQueue, CancelThenRescheduleReusesPooledEntry)
{
    EventQueue q;
    const EventId a = q.schedule(Tick{10}, [] {});
    EXPECT_TRUE(q.deschedule(a));
    // Drain: the tombstoned entry is reclaimed as the queue walks past.
    q.runAll();
    const std::size_t slots = q.poolSlots();

    const EventId b = q.schedule(Tick{20}, [] {});
    EXPECT_EQ(q.poolSlots(), slots) << "pool grew instead of recycling";
    EXPECT_EQ(EventQueue::idSlot(b), EventQueue::idSlot(a));
    EXPECT_EQ(EventQueue::idGeneration(b),
              EventQueue::idGeneration(a) + 1);
    // The stale handle must not be able to kill the new tenant.
    EXPECT_FALSE(q.deschedule(a));
    EXPECT_EQ(q.pending(), 1u);
    EXPECT_TRUE(q.deschedule(b));
}

TEST(EventQueue, MaxPendingHighWaterScriptedSequence)
{
    // Pins the high-water accounting now that there is no liveness
    // hash set to size(): schedule/cancel/execute in a fixed script
    // with a known peak.
    EventQueue q;
    const EventId e1 = q.schedule(Tick{10}, [] {});
    const EventId e2 = q.schedule(Tick{20}, [] {});
    q.post(Tick{30}, [] {});
    EXPECT_EQ(q.stats().max_pending, 3u);

    EXPECT_TRUE(q.deschedule(e2));
    EXPECT_EQ(q.pending(), 2u);
    EXPECT_EQ(q.stats().max_pending, 3u);   // high water survives cancel

    // Climb to a new peak of 4 live events.
    q.post(Tick{40}, [] {});
    q.post(Tick{50}, [] {});
    EXPECT_EQ(q.pending(), 4u);
    EXPECT_EQ(q.stats().max_pending, 4u);

    EXPECT_TRUE(q.step());   // e1 executes
    EXPECT_EQ(q.pending(), 3u);
    q.post(Tick{60}, [] {});   // back to 4: ties, not beats, the peak
    EXPECT_EQ(q.stats().max_pending, 4u);
    q.runAll();

    EXPECT_EQ(q.stats().scheduled, 6u);
    EXPECT_EQ(q.stats().executed, 5u);
    EXPECT_EQ(q.stats().cancelled, 1u);
    EXPECT_EQ(q.stats().max_pending, 4u);
    (void)e1;
}

TEST(EventQueue, DifferentialAgainstLegacyKernel)
{
    // Seeded randomized schedule/cancel/step traffic driven identically
    // into the rewritten kernel and the preserved pre-rewrite kernel.
    // The observable execution order and the stats must match exactly.
    for (const std::uint64_t seed : {1ull, 42ull, 0xeccull}) {
        Rng rng(seed);
        EventQueue nq;
        legacy::EventQueue lq;
        std::vector<int> n_order, l_order;
        // Parallel handle arrays: entry i holds the two kernels' ids
        // for the same logical event.
        std::vector<std::pair<EventId, EventId>> handles;

        int label = 0;
        for (int round = 0; round < 2000; ++round) {
            const std::uint64_t op = rng.below(100);
            if (op < 70) {
                // Deltas straddle the wheel horizon (2^16) so both the
                // wheel and the overflow heap stay busy, with bursts of
                // identical ticks to stress the FIFO tie-break.
                std::uint64_t d = rng.below(std::uint64_t{1} << 17);
                if (rng.below(4) == 0)
                    d = 1024;   // collision burst
                const int prio = static_cast<int>(rng.below(3)) - 1;
                const auto tag = static_cast<EventTag>(
                    rng.below(kNumEventTags));
                const int l = label++;
                const EventId ni = nq.scheduleIn(
                    Tick{d}, [&n_order, l] { n_order.push_back(l); },
                    prio, tag);
                const EventId li = lq.scheduleIn(
                    Tick{d}, [&l_order, l] { l_order.push_back(l); },
                    prio, tag);
                handles.emplace_back(ni, li);
            } else if (op < 85 && !handles.empty()) {
                const std::size_t pick = static_cast<std::size_t>(
                    rng.below(handles.size()));
                const bool n_ok = nq.deschedule(handles[pick].first);
                const bool l_ok = lq.deschedule(handles[pick].second);
                ASSERT_EQ(n_ok, l_ok) << "cancel divergence, seed "
                                      << seed << " round " << round;
            } else {
                const auto steps = rng.below(4);
                for (std::uint64_t s = 0; s < steps; ++s) {
                    const bool n_ok = nq.step();
                    const bool l_ok = lq.step();
                    ASSERT_EQ(n_ok, l_ok);
                    ASSERT_EQ(nq.now(), lq.now())
                        << "time divergence, seed " << seed;
                }
            }
        }
        nq.runAll();
        lq.runAll();
        EXPECT_EQ(n_order, l_order) << "order divergence, seed " << seed;
        EXPECT_EQ(nq.now(), lq.now());
        EXPECT_EQ(nq.stats().scheduled, lq.stats().scheduled);
        EXPECT_EQ(nq.stats().executed, lq.stats().executed);
        EXPECT_EQ(nq.stats().cancelled, lq.stats().cancelled);
        EXPECT_EQ(nq.stats().max_pending, lq.stats().max_pending);
        EXPECT_EQ(nq.stats().executed_by_tag, lq.stats().executed_by_tag);
    }
}

TEST(EventQueue, WheelSpanBoundaryPlacementKeepsOrder)
{
    // Deltas exactly at the horizon go to the heap, one below goes to
    // the wheel; an equal-tick pair scheduled through both paths still
    // runs in FIFO order.
    EventQueue q;
    const Tick::rep span = q.wheelSpan();
    std::vector<int> order;
    q.postIn(Tick{span}, [&] { order.push_back(0); });       // heap
    q.postIn(Tick{span - 1}, [&] { order.push_back(1); });   // wheel
    q.postIn(Tick{span}, [&] { order.push_back(2); });       // heap
    q.runAll();
    EXPECT_EQ(order, (std::vector<int>{1, 0, 2}));
}

TEST(Simulator, ComponentSeesTime)
{
    Simulator sim;
    struct Probe : Component
    {
        using Component::Component;
        Tick seen{};
    } probe(sim, "probe");

    sim.post(Tick{123}, [&] { probe.seen = probe.curTick(); });
    sim.run();
    EXPECT_EQ(probe.seen, 123u);
    EXPECT_EQ(probe.name(), "probe");
}

TEST(Simulator, RunWithLimit)
{
    Simulator sim;
    int count = 0;
    sim.post(Tick{10}, [&] { ++count; });
    sim.post(Tick{1000}, [&] { ++count; });
    sim.run(Tick{500});
    EXPECT_EQ(count, 1);
}

} // namespace
} // namespace emcc

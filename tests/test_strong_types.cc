/**
 * @file
 * Compile-time contract of the strong Tick/Cycles/Addr/BlockNum types.
 *
 * The point of the strong types is what does NOT compile: mixing
 * dimensions (a Tick plus an Addr), implicit narrowing from raw
 * integers, and implicit decay back to integers. Those properties are
 * asserted here with detection concepts, so a regression that loosens
 * the types fails this TU at compile time — the test body then only
 * has to check the arithmetic that IS allowed.
 */

#include <gtest/gtest.h>

#include <concepts>
#include <cstdint>
#include <type_traits>
#include <unordered_map>

#include "common/types.hh"

namespace emcc {
namespace {

// ----------------------------------------------------- detection helpers

template <class A, class B>
concept CanAdd = requires(A a, B b) { a + b; };

template <class A, class B>
concept CanSub = requires(A a, B b) { a - b; };

template <class A, class B>
concept CanMul = requires(A a, B b) { a *b; };

template <class A, class B>
concept CanEq = requires(A a, B b) { a == b; };

template <class A, class B>
concept CanLess = requires(A a, B b) { a < b; };

// --------------------------------------------- cross-type mixing is banned

// Time plus an address (or a block number) is dimensionally meaningless.
static_assert(!CanAdd<Tick, Addr>);
static_assert(!CanAdd<Addr, Tick>);
static_assert(!CanAdd<Tick, BlockNum>);
static_assert(!CanAdd<Cycles, Addr>);
static_assert(!CanSub<Tick, Addr>);
static_assert(!CanSub<Addr, Tick>);

// Cycle counts and picosecond timestamps don't mix without an explicit
// cyclesToTicks()/ticksToCycles() conversion through a clock period.
static_assert(!CanAdd<Tick, Cycles>);
static_assert(!CanAdd<Cycles, Tick>);
static_assert(!CanEq<Tick, Cycles>);
static_assert(!CanLess<Cycles, Tick>);

// Addresses and block numbers convert only via blockNumber()/blockBase().
static_assert(!CanAdd<Addr, BlockNum>);
static_assert(!CanEq<Addr, BlockNum>);
static_assert(!std::is_convertible_v<Addr, BlockNum>);
static_assert(!std::is_convertible_v<BlockNum, Addr>);

// Products of two quantities of the same dimension are meaningless here
// (there is no Tick² type); scaling needs a dimensionless integer.
static_assert(!CanMul<Tick, Tick>);
static_assert(!CanMul<Addr, Addr>);

// ----------------------------------- no implicit conversions either way

static_assert(!std::is_convertible_v<std::uint64_t, Tick>);
static_assert(!std::is_convertible_v<std::uint64_t, Addr>);
static_assert(!std::is_convertible_v<int, Tick>);
static_assert(!std::is_convertible_v<Tick, std::uint64_t>);
static_assert(!std::is_convertible_v<Addr, std::uint64_t>);
static_assert(!std::is_convertible_v<Addr, double>);

// Explicit construction and explicit casts stay available (printing,
// stats export, printf varargs).
static_assert(std::is_constructible_v<Tick, std::uint64_t>);
static_assert(std::is_constructible_v<Addr, std::uint64_t>);
static_assert(requires(Tick t) { static_cast<double>(t); });
static_assert(requires(Addr a) { static_cast<std::uint64_t>(a); });

// ------------------------------------- the allowed algebra, spot-checked

static_assert(std::same_as<decltype(Tick{} + Tick{}), Tick>);
static_assert(std::same_as<decltype(Tick{} - Tick{}), Tick>);
static_assert(std::same_as<decltype(Tick{} * 3), Tick>);
static_assert(std::same_as<decltype(3 * Tick{}), Tick>);
// A ratio of durations is dimensionless.
static_assert(std::same_as<decltype(Tick{8} / Tick{2}), std::uint64_t>);

static_assert(std::same_as<decltype(Addr{} + 8), Addr>);
static_assert(std::same_as<decltype(Addr{} & 0x3f), Addr>);
// Address differences, shifts, and modulo yield raw fields, not addresses.
static_assert(std::same_as<decltype(Addr{} - Addr{}), std::uint64_t>);
static_assert(std::same_as<decltype(Addr{} >> 6), std::uint64_t>);
static_assert(std::same_as<decltype(Addr{} % 7), std::uint64_t>);
static_assert(std::same_as<decltype(Addr{} / 4096), std::uint64_t>);

static_assert(std::same_as<decltype(blockNumber(Addr{})), BlockNum>);
static_assert(std::same_as<decltype(blockBase(BlockNum{})), Addr>);
static_assert(std::same_as<decltype(cyclesToTicks(Cycles{}, Tick{})), Tick>);
static_assert(std::same_as<decltype(ticksToCycles(Tick{}, Tick{})), Cycles>);

// ------------------------------------------------------- runtime checks

TEST(StrongTypes, DefaultConstructionIsZero)
{
    EXPECT_EQ(Tick{}, Tick{0});
    EXPECT_EQ(Addr{}.value(), 0u);
    EXPECT_EQ(Cycles{}.value(), 0u);
    EXPECT_EQ(BlockNum{}.value(), 0u);
}

TEST(StrongTypes, TickArithmetic)
{
    Tick t{100};
    t += Tick{50};
    EXPECT_EQ(t, Tick{150});
    t -= Tick{30};
    EXPECT_EQ(t, Tick{120});
    EXPECT_EQ(t * 2, Tick{240});
    EXPECT_EQ(t / 2, Tick{60});
    EXPECT_EQ(t / Tick{50}, 2u);        // whole periods
    EXPECT_EQ(t % Tick{50}, Tick{20});  // remainder stays a duration
}

TEST(StrongTypes, CycleConversionsRoundTrip)
{
    const Tick period{250};   // 4 GHz clock in ps
    const Cycles n{12};
    const Tick span = cyclesToTicks(n, period);
    EXPECT_EQ(span, Tick{3000});
    EXPECT_EQ(ticksToCycles(span, period), n);
    // Truncation, not rounding: 2999 ps is 11 whole cycles.
    EXPECT_EQ(ticksToCycles(span - Tick{1}, period), Cycles{11});
}

TEST(StrongTypes, AddrBlockRoundTrip)
{
    const Addr a{0x12345};
    EXPECT_EQ(blockAlign(a), Addr{0x12340});
    EXPECT_EQ(blockNumber(a).value(), 0x12345u >> kBlockShift);
    EXPECT_EQ(blockBase(blockNumber(a)), blockAlign(a));
    EXPECT_EQ(a - blockAlign(a), 0x5u);   // byte offset within the block
}

TEST(StrongTypes, SentinelsCompareDistinct)
{
    EXPECT_NE(kTickInvalid, Tick{});
    EXPECT_NE(kAddrInvalid, Addr{});
    EXPECT_NE(kBlockInvalid, BlockNum{});
    EXPECT_EQ(kTickInvalid.value(), ~std::uint64_t{0});
}

TEST(StrongTypes, HashSupportsUnorderedContainers)
{
    std::unordered_map<Addr, int> m;
    m[Addr{0x40}] = 1;
    m[Addr{0x80}] = 2;
    EXPECT_EQ(m.at(Addr{0x40}), 1);
    EXPECT_EQ(m.at(Addr{0x80}), 2);
    EXPECT_EQ(m.count(Addr{0xc0}), 0u);

    std::unordered_map<BlockNum, int> bm;
    bm[blockNumber(Addr{0x40})] = 3;
    EXPECT_EQ(bm.at(BlockNum{1}), 3);
}

TEST(StrongTypes, StreamInsertionPrintsRawValue)
{
    std::ostringstream os;
    os << Tick{123} << " " << Addr{0x40};
    EXPECT_EQ(os.str(), "123 64");
}

} // namespace
} // namespace emcc

/**
 * @file
 * Campaign engine tests: the strict JSON parser, spec
 * parsing/expansion/digesting, journal sealing + torn-line rejection,
 * the deadline/retry/backoff state machine, and small in-process
 * campaigns through the real worker pool (chaos failure injection,
 * wedge timeouts, journal resume).
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "campaign/engine.hh"
#include "campaign/json.hh"
#include "campaign/journal.hh"
#include "campaign/retry.hh"
#include "campaign/spec.hh"
#include "common/error.hh"
#include "common/sync.hh"
#include "system/experiment.hh"

namespace emcc {
namespace campaign {
namespace {

std::string
tmpPath(const char *tag)
{
    return std::string(::testing::TempDir()) + "/emcc_campaign_" + tag +
           "_" + std::to_string(::getpid());
}

// ------------------------------------------------------------------ JSON

TEST(CampaignJson, ParsesScalarsArraysObjects)
{
    const JsonValue v = JsonValue::parse(
        R"({"a":1,"b":-2.5,"c":"x\ny","d":[true,false,null],"e":{"f":18446744073709551615}})");
    EXPECT_EQ(v.find("a")->asUint("a"), 1u);
    EXPECT_DOUBLE_EQ(v.find("b")->asReal("b"), -2.5);
    EXPECT_EQ(v.find("c")->asString("c"), "x\ny");
    const auto &arr = v.find("d")->asArray("d");
    ASSERT_EQ(arr.size(), 3u);
    EXPECT_TRUE(arr[0].asBool("d[0]"));
    EXPECT_FALSE(arr[1].asBool("d[1]"));
    // Large seeds round-trip exactly (no double mangling).
    EXPECT_EQ(v.find("e")->find("f")->asUint("f"),
              18446744073709551615ull);
    EXPECT_EQ(v.find("missing"), nullptr);
}

TEST(CampaignJson, RejectsMalformedDocuments)
{
    EXPECT_THROW(JsonValue::parse(""), ConfigError);
    EXPECT_THROW(JsonValue::parse("{"), ConfigError);
    EXPECT_THROW(JsonValue::parse("{} trailing"), ConfigError);
    EXPECT_THROW(JsonValue::parse(R"({"a":1,"a":2})"), ConfigError);
    EXPECT_THROW(JsonValue::parse(R"({"a":"\q"})"), ConfigError);
    EXPECT_THROW(JsonValue::parse("{'a':1}"), ConfigError);
    // Type mismatches name the offending field.
    const JsonValue v = JsonValue::parse(R"({"n":"text"})");
    try {
        v.find("n")->asUint("grid.cores");
        FAIL() << "expected ConfigError";
    } catch (const ConfigError &e) {
        EXPECT_NE(std::string(e.what()).find("grid.cores"),
                  std::string::npos);
    }
}

// ------------------------------------------------------------------ spec

TEST(CampaignSpec, ParsesGridDefaultsAndDigestIsCanonical)
{
    const char *doc = R"({
        "schema": "emcc-campaign-spec-v1",
        "name": "t",
        "grid": {"workload": ["BFS"], "seed": [1, 2]}
    })";
    const CampaignSpec spec = CampaignSpec::parse(doc);
    EXPECT_TRUE(spec.has_grid);
    EXPECT_EQ(spec.grid.seed.size(), 2u);
    EXPECT_EQ(spec.grid.scheme, std::vector<std::string>{"emcc"});
    EXPECT_DOUBLE_EQ(spec.deadline_s, 300.0);

    // The digest hashes the normalized rendering: whitespace and key
    // order in the source never matter.
    const char *reordered = R"({
        "grid": {"seed": [1,2], "workload": ["BFS"]},
        "name": "t", "schema": "emcc-campaign-spec-v1"
    })";
    EXPECT_EQ(spec.digest(), CampaignSpec::parse(reordered).digest());
    // Any semantic change moves the digest.
    CampaignSpec other = spec;
    other.grid.seed.push_back(3);
    EXPECT_NE(spec.digest(), other.digest());
}

TEST(CampaignSpec, RejectsUnknownKeysAndBadValues)
{
    EXPECT_THROW(
        CampaignSpec::parse(
            R"({"schema":"emcc-campaign-spec-v1","typo_key":1})"),
        ConfigError);
    EXPECT_THROW(
        CampaignSpec::parse(
            R"({"schema":"emcc-campaign-spec-v1","grid":{"cheme":["emcc"]}})"),
        ConfigError);
    EXPECT_THROW(
        CampaignSpec::parse(
            R"({"schema":"emcc-campaign-spec-v1","deadline_s":0})"),
        ConfigError);
    EXPECT_THROW(CampaignSpec::parse(R"({"schema":"who-knows-v7"})"),
                 ConfigError);
    // Fault specs are validated at parse time, not first dispatch.
    EXPECT_THROW(
        CampaignSpec::parse(
            R"({"schema":"emcc-campaign-spec-v1","grid":{"faults":"gremlin:count=1"}})"),
        ConfigError);
}

TEST(CampaignSpec, ExpandOrderNamesAndChaosSchedule)
{
    CampaignSpec spec;
    spec.has_grid = true;
    spec.grid.workload = {"BFS"};
    spec.grid.scheme = {"emcc", "baseline"};
    spec.grid.seed = {1, 2};
    spec.chaos.fail_period = 2;
    spec.chaos.fail_attempts = 3;
    spec.chaos.hard_fail_period = 3;
    CommandSpec cmd;
    cmd.name = "lint";
    cmd.argv = {"true"};
    spec.commands.push_back(cmd);

    const auto runs = spec.expand();
    ASSERT_EQ(runs.size(), 5u);
    EXPECT_EQ(runs[0].name, "BFS/emcc/morphable/s1");
    EXPECT_EQ(runs[1].name, "BFS/emcc/morphable/s2");
    EXPECT_EQ(runs[2].name, "BFS/baseline/morphable/s1");
    EXPECT_EQ(runs[3].name, "BFS/baseline/morphable/s2");
    EXPECT_EQ(runs[4].name, "cmd/lint");
    EXPECT_EQ(runs[4].kind, RunDesc::Kind::Command);
    for (std::size_t i = 0; i < runs.size(); ++i)
        EXPECT_EQ(runs[i].index, i);
    // 1-based chaos positions: period 2 -> runs 1,3; period 3 -> run 2.
    EXPECT_EQ(runs[0].chaos_fail_attempts, 0u);
    EXPECT_EQ(runs[1].chaos_fail_attempts, 3u);
    EXPECT_EQ(runs[3].chaos_fail_attempts, 3u);
    EXPECT_FALSE(runs[1].chaos_hard_fail);
    EXPECT_TRUE(runs[2].chaos_hard_fail);

    // The workload seed rides the grid seed (mirrors emcc_sim --seed).
    EXPECT_EQ(runs[1].cfg.seed, 2u);
    EXPECT_EQ(runs[1].scale.workload.seed, 2u);
}

TEST(CampaignSpec, ExpandRejectsDuplicateRunNames)
{
    CampaignSpec spec;
    spec.has_grid = true;
    spec.grid.seed = {1, 1};
    EXPECT_THROW(spec.expand(), ConfigError);
}

// --------------------------------------------------------------- journal

TEST(CampaignJournal, SealUnsealRoundTrip)
{
    const std::string body = R"({"run":7,"name":"x","outcome":"ok"})";
    const std::string line = sealLine(body);
    EXPECT_NE(line.find("\"crc\":\""), std::string::npos);
    std::string recovered;
    ASSERT_TRUE(unsealLine(line, recovered));
    EXPECT_EQ(recovered, body);
}

TEST(CampaignJournal, RejectsTamperedAndTruncatedLines)
{
    const std::string line =
        sealLine(R"({"run":7,"name":"x","outcome":"ok"})");
    std::string body;
    // Flip a content byte: checksum mismatch.
    std::string tampered = line;
    tampered[2] = 'R';
    EXPECT_FALSE(unsealLine(tampered, body));
    // Truncate mid-record: the SIGKILL torn-tail shape.
    EXPECT_FALSE(unsealLine(line.substr(0, line.size() / 2), body));
    EXPECT_FALSE(unsealLine("", body));
    EXPECT_FALSE(unsealLine("{\"run\":1}", body));
}

TEST(CampaignJournal, LoadKeepsValidPrefixAndDropsTornTail)
{
    const std::string path = tmpPath("torn");
    std::remove(path.c_str());
    {
        Journal j;
        j.open(path, "t", 0xabcd, /*fsync_each=*/false);
        JournalRecord rec;
        rec.run = 0;
        rec.name = "a";
        rec.outcome = Outcome::Ok;
        rec.stats_json = "{\"schema\":\"emcc-stats-v1\"}";
        j.append(rec);
        rec.run = 1;
        rec.name = "b";
        rec.outcome = Outcome::Failed;
        rec.error = "boom";
        rec.stats_json.clear();
        j.append(rec);
    }
    // Simulate a SIGKILL mid-append: a torn half record at the tail.
    {
        std::ofstream out(path, std::ios::app);
        out << "{\"run\":2,\"name\":\"c\",\"outco";
    }
    const Journal::LoadResult lr = Journal::load(path);
    EXPECT_TRUE(lr.header_ok);
    EXPECT_EQ(lr.spec_digest, 0xabcdu);
    ASSERT_EQ(lr.records.size(), 2u);
    EXPECT_EQ(lr.records[0].name, "a");
    // The stats object survives byte-identically.
    EXPECT_EQ(lr.records[0].stats_json,
              "{\"schema\":\"emcc-stats-v1\"}");
    EXPECT_EQ(lr.records[1].error, "boom");
    EXPECT_EQ(lr.dropped_lines, 1u);
    std::remove(path.c_str());
}

TEST(CampaignJournal, OpenRefusesSpecDigestMismatch)
{
    const std::string path = tmpPath("mismatch");
    std::remove(path.c_str());
    {
        Journal j;
        j.open(path, "t", 0x1111, /*fsync_each=*/false);
    }
    Journal j2;
    EXPECT_THROW(j2.open(path, "t", 0x2222, false), ConfigError);
    std::remove(path.c_str());
}

TEST(CampaignJournal, AggregateKeepsLastRecordPerRunSorted)
{
    JournalRecord a;
    a.run = 2;
    a.name = "two";
    a.outcome = Outcome::Failed;
    a.host_ms = 3.25;
    JournalRecord b;
    b.run = 0;
    b.name = "zero";
    b.outcome = Outcome::Ok;
    JournalRecord a2 = a;
    a2.outcome = Outcome::Ok;
    const std::string agg = Journal::aggregate({a, b, a2});
    // Sorted by run id, later duplicate wins, host_ms stripped.
    const std::size_t p0 = agg.find("\"run\":0");
    const std::size_t p2 = agg.find("\"run\":2");
    ASSERT_NE(p0, std::string::npos);
    ASSERT_NE(p2, std::string::npos);
    EXPECT_LT(p0, p2);
    EXPECT_EQ(agg.find("failed"), std::string::npos);
    EXPECT_EQ(agg.find("host_ms"), std::string::npos);
}

// ---------------------------------------------------------- retry policy

TEST(RetryPolicy, BackoffDoublesAndCaps)
{
    const RetryPolicy p(/*max_retries=*/10, /*backoff_ms=*/100.0,
                        /*deadline_s=*/5.0);
    EXPECT_EQ(p.maxAttempts(), 11u);
    EXPECT_DOUBLE_EQ(p.backoffMs(1), 100.0);
    EXPECT_DOUBLE_EQ(p.backoffMs(2), 200.0);
    EXPECT_DOUBLE_EQ(p.backoffMs(3), 400.0);
    // Exponential growth caps at 30 s, however many attempts.
    EXPECT_DOUBLE_EQ(p.backoffMs(20), 30'000.0);
}

TEST(RetryPolicy, SharedBudgetDistinctOutcomes)
{
    const RetryPolicy p(2, 50.0, 5.0);
    // Attempts 1 and 2 may retry; attempt 3 is terminal.
    EXPECT_TRUE(p.onFailure(1).retry);
    EXPECT_DOUBLE_EQ(p.onFailure(1).delay_ms, 50.0);
    EXPECT_TRUE(p.onTimeout(2).retry);
    EXPECT_DOUBLE_EQ(p.onTimeout(2).delay_ms, 100.0);
    EXPECT_FALSE(p.onFailure(3).retry);
    EXPECT_EQ(p.onFailure(3).outcome, Outcome::Failed);
    EXPECT_FALSE(p.onTimeout(3).retry);
    EXPECT_EQ(p.onTimeout(3).outcome, Outcome::Timeout);
}

TEST(RetryPolicy, DrainingForbidsRetries)
{
    const RetryPolicy p(5, 50.0, 5.0);
    EXPECT_FALSE(p.onFailure(1, /*draining=*/true).retry);
    EXPECT_FALSE(p.onTimeout(1, /*draining=*/true).retry);
    EXPECT_EQ(p.onTimeout(1, true).outcome, Outcome::Timeout);
}

// ----------------------------------------------------------- engine runs

CampaignSpec
tinySpec()
{
    CampaignSpec spec;
    spec.name = "unit";
    spec.has_grid = true;
    spec.grid.workload = {"BFS"};
    spec.grid.seed = {1, 2};
    spec.grid.cores = 2;
    spec.grid.warmup = 500;
    spec.grid.measure = 1'000;
    spec.grid.trace_len = 4'000;
    spec.grid.graph_vertices = 1 << 10;
    spec.deadline_s = 120.0;
    spec.retries = 2;
    spec.backoff_ms = 1.0;
    return spec;
}

EngineOptions
quietOpts()
{
    EngineOptions o;
    o.jobs = 2;
    o.quiet = true;
    o.fsync_journal = false;
    return o;
}

TEST(CampaignEngine, RunsGridToCompletion)
{
    CampaignEngine eng(tinySpec(), quietOpts());
    const CampaignSummary sum = eng.run();
    EXPECT_TRUE(sum.complete());
    EXPECT_EQ(sum.total, 2u);
    EXPECT_EQ(sum.ok, 2u);
    EXPECT_EQ(sum.failed + sum.timeout + sum.retried, 0u);
    EXPECT_EQ(sum.attempts, 2u);
    ASSERT_EQ(eng.terminalRecords().size(), 2u);
    // Ok sim runs carry their full deterministic stats object.
    for (const JournalRecord &r : eng.terminalRecords()) {
        EXPECT_NE(r.stats_json.find("\"schema\":\"emcc-stats-v1\""),
                  std::string::npos);
    }
}

TEST(CampaignEngine, ChaosFailuresRetryThenSucceed)
{
    CampaignSpec spec = tinySpec();
    spec.chaos.fail_period = 1;    // every run fails its first attempt
    spec.chaos.fail_attempts = 1;
    CampaignEngine eng(spec, quietOpts());
    const CampaignSummary sum = eng.run();
    EXPECT_TRUE(sum.complete());
    EXPECT_EQ(sum.ok, 2u);
    EXPECT_EQ(sum.retried, 2u);
    EXPECT_EQ(sum.attempts, 4u);
    for (const JournalRecord &r : eng.terminalRecords())
        EXPECT_EQ(r.attempts, 2u);
}

TEST(CampaignEngine, HardFailuresExhaustBudgetAndIsolate)
{
    CampaignSpec spec = tinySpec();
    spec.chaos.hard_fail_period = 2;   // run index 1 always throws
    spec.retries = 1;
    CampaignEngine eng(spec, quietOpts());
    const CampaignSummary sum = eng.run();
    // One run fails terminally; the other still completes ok.
    EXPECT_TRUE(sum.complete());
    EXPECT_EQ(sum.ok, 1u);
    EXPECT_EQ(sum.failed, 1u);
    EXPECT_EQ(sum.retried, 1u);
    const JournalRecord &bad = eng.terminalRecords()[1];
    EXPECT_EQ(bad.outcome, Outcome::Failed);
    EXPECT_EQ(bad.attempts, 2u);
    EXPECT_NE(bad.error.find("chaos"), std::string::npos);
    EXPECT_TRUE(bad.stats_json.empty());
}

TEST(CampaignEngine, WedgedRunsTimeOutAtDeadline)
{
    CampaignSpec spec = tinySpec();
    spec.grid.seed = {1};
    spec.chaos.wedge_period = 1;
    spec.chaos.wedge_attempts = 1;
    spec.deadline_s = 0.2;
    spec.retries = 1;
    CampaignEngine eng(spec, quietOpts());
    const CampaignSummary sum = eng.run();
    EXPECT_TRUE(sum.complete());
    // Attempt 1 wedges until the watchdog cancels it; attempt 2 runs
    // clean: the run retries out of the timeout.
    EXPECT_EQ(sum.ok, 1u);
    EXPECT_EQ(sum.timeout, 0u);
    EXPECT_EQ(sum.retried, 1u);
    EXPECT_EQ(sum.timeout_attempts, 1u);
    const JournalRecord &rec = eng.terminalRecords()[0];
    EXPECT_EQ(rec.attempts, 2u);
    EXPECT_EQ(rec.timeouts, 1u);
}

TEST(CampaignEngine, JournalResumeSkipsTerminalRuns)
{
    const std::string path = tmpPath("resume");
    std::remove(path.c_str());
    const CampaignSpec spec = tinySpec();

    EngineOptions opts = quietOpts();
    opts.journal_path = path;
    CampaignEngine first(spec, opts);
    const CampaignSummary s1 = first.run();
    EXPECT_TRUE(s1.complete());
    EXPECT_EQ(s1.executed, 2u);
    const std::string agg1 = Journal::aggregate(first.terminalRecords());

    // Relaunch over the same journal: everything is satisfied from the
    // log, nothing re-executes, and the aggregate is byte-identical.
    CampaignEngine second(spec, opts);
    const CampaignSummary s2 = second.run();
    EXPECT_TRUE(s2.complete());
    EXPECT_EQ(s2.skipped, 2u);
    EXPECT_EQ(s2.executed, 0u);
    EXPECT_EQ(s2.attempts, 0u);
    EXPECT_EQ(s2.ok, 2u);
    EXPECT_EQ(Journal::aggregate(second.terminalRecords()), agg1);

    // A different spec must refuse the journal outright.
    CampaignSpec other = spec;
    other.grid.seed = {1, 2, 3};
    CampaignEngine third(other, opts);
    EXPECT_THROW(static_cast<void>(third.run()), ConfigError);
    std::remove(path.c_str());
}

// ------------------------------------------------- threaded stress
// These tests exist to run under ThreadSanitizer (the tsan CI job):
// they put real contention on the engine's two capabilities (mutex_,
// journal_mutex_), the lock-free Flight slots, and the shared
// workload cache. They also pass on a plain build, just with less
// diagnostic power.

TEST(CampaignStress, ParallelChaosGridHammersSchedulerAndJournal)
{
    const std::string path = tmpPath("stress");
    std::remove(path.c_str());
    CampaignSpec spec = tinySpec();
    spec.grid.seed = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16};
    spec.chaos.fail_period = 3;        // every 3rd run retries once
    spec.chaos.fail_attempts = 1;
    spec.chaos.hard_fail_period = 7;   // every 7th fails terminally

    EngineOptions opts = quietOpts();
    opts.jobs = 8;                     // more workers than a dev laptop
    opts.journal_path = path;          // journal_mutex_ under contention

    CampaignEngine eng(spec, opts);
    const CampaignSummary sum = eng.run();
    EXPECT_TRUE(sum.complete());
    EXPECT_EQ(sum.total, 16u);
    EXPECT_EQ(sum.ok + sum.failed, 16u);
    // Chaos schedule: runs 6 and 13 (hard_fail_period 7) fail every
    // attempt; runs with (index+1) % 3 == 0 burn one retry.
    EXPECT_EQ(sum.failed, 2u);
    EXPECT_GE(sum.retried, 4u);
    // Every terminal outcome must have reached the journal before the
    // run was counted done, whatever worker settled it.
    const Journal::LoadResult lr = Journal::load(path);
    EXPECT_TRUE(lr.header_ok);
    EXPECT_EQ(lr.records.size(), 16u);
    EXPECT_EQ(lr.dropped_lines, 0u);
    std::remove(path.c_str());
}

TEST(CampaignStress, ConcurrentJournalAppendsSerializeUnderOneMutex)
{
    const std::string path = tmpPath("jstress");
    std::remove(path.c_str());
    constexpr unsigned kThreads = 8;
    constexpr unsigned kPerThread = 200;
    {
        Journal journal;
        journal.open(path, "stress", 0xfeed, /*fsync_each=*/false);
        // The documented discipline from journal.hh: the Journal is not
        // internally synchronized; the owner serializes appends.
        sync::Mutex mu;
        std::vector<std::thread> writers;
        writers.reserve(kThreads);
        for (unsigned t = 0; t < kThreads; ++t) {
            writers.emplace_back([&journal, &mu, t] {
                // Built with += rather than operator+: GCC 12's
                // -Wrestrict false-positives on the inlined char* +
                // rvalue-string concatenation (PR105329).
                std::string wname = "w";
                wname += std::to_string(t);
                for (unsigned i = 0; i < kPerThread; ++i) {
                    JournalRecord rec;
                    rec.run = t * 1000 + i;
                    rec.name = wname;
                    rec.outcome = Outcome::Ok;
                    sync::MutexLock lock(mu);
                    journal.append(rec);
                }
            });
        }
        for (std::thread &w : writers)
            w.join();
        journal.close();
    }
    // Every record from every thread landed intact (no torn or
    // interleaved lines), whatever the global interleaving was.
    const Journal::LoadResult lr = Journal::load(path);
    EXPECT_TRUE(lr.header_ok);
    EXPECT_EQ(lr.dropped_lines, 0u);
    ASSERT_EQ(lr.records.size(), std::size_t{kThreads} * kPerThread);
    std::set<Count> runs;
    for (const JournalRecord &r : lr.records)
        runs.insert(r.run);
    EXPECT_EQ(runs.size(), std::size_t{kThreads} * kPerThread);
    std::remove(path.c_str());
}

TEST(CampaignStress, WorkloadCacheFirstBuildIsRacefree)
{
    // All workers of a fresh campaign hit cachedWorkload() for the
    // same key at once; exactly one must build, everyone must get the
    // same immutable instance. Distinct trace_len from other tests so
    // this test really exercises the first-build path.
    WorkloadParams params;
    params.cores = 2;
    params.trace_len = 2'111;
    params.graph_vertices = 1 << 10;
    params.seed = 99;

    constexpr unsigned kThreads = 8;
    std::vector<const WorkloadSet *> got(kThreads, nullptr);
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (unsigned t = 0; t < kThreads; ++t) {
        threads.emplace_back([&got, &params, t] {
            got[t] = &experiments::cachedWorkload("BFS", params);
        });
    }
    for (std::thread &th : threads)
        th.join();
    for (unsigned t = 1; t < kThreads; ++t)
        EXPECT_EQ(got[t], got[0]);
}

} // namespace
} // namespace campaign
} // namespace emcc

#!/usr/bin/env python3
"""Gate the kernel host-performance results against the baseline.

Usage: check_host_perf.py BENCH_host_perf.json host_perf_baseline.json

Reads the speedup column (new-kernel events/sec over legacy-kernel
events/sec, measured in the same process on the same machine — so the
ratio is host-independent) for every microbench pattern and fails when

  * a pattern present in the baseline is missing from the results,
  * a pattern's speedup regressed more than 30% below its baseline, or
  * the steady_state pattern — the schedule/execute throughput the
    kernel rewrite is accountable for — falls below the absolute 2x
    floor from the PR's acceptance criteria.

Exit status: 0 clean, 1 regression/malformed input, 2 usage error.
"""

import json
import sys

TOLERANCE = 0.7          # fail on >30% regression vs baseline
ABSOLUTE_FLOORS = {"steady_state": 2.0}


def fail(msg):
    print(f"check_host_perf: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def main():
    if len(sys.argv) != 3:
        print(__doc__, file=sys.stderr)
        sys.exit(2)

    with open(sys.argv[1], encoding="utf-8") as f:
        bench = json.load(f)
    with open(sys.argv[2], encoding="utf-8") as f:
        baseline = json.load(f)

    cols = bench.get("columns", [])
    if "pattern" not in cols or "speedup" not in cols:
        fail(f"{sys.argv[1]} lacks pattern/speedup columns: {cols}")
    pat_i, spd_i = cols.index("pattern"), cols.index("speedup")

    measured = {}
    for row in bench.get("rows", []):
        try:
            measured[row[pat_i]] = float(row[spd_i])
        except (ValueError, IndexError):
            continue   # end-to-end rows carry "-" speedups; skip

    ok = True
    for pattern, base in sorted(baseline["speedups"].items()):
        if pattern not in measured:
            fail(f"pattern '{pattern}' missing from results")
        got = measured[pattern]
        floor = base * TOLERANCE
        verdict = "ok"
        if got < floor:
            verdict = f"REGRESSION (floor {floor:.2f})"
            ok = False
        absolute = ABSOLUTE_FLOORS.get(pattern)
        if absolute is not None and got < absolute:
            verdict = f"BELOW ABSOLUTE {absolute:.1f}x FLOOR"
            ok = False
        print(f"check_host_perf: {pattern}: {got:.2f}x "
              f"(baseline {base:.2f}x) {verdict}")

    if not ok:
        fail("kernel speedup regressed; see lines above. If the "
             "regression is intentional, re-baseline "
             "bench/host_perf_baseline.json with a justification.")
    print("check_host_perf: OK")


if __name__ == "__main__":
    main()

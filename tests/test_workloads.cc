/**
 * @file
 * Tests for the workload substrate: graph generation, kernel trace
 * properties (determinism, footprint, irregularity), synthetic
 * generators, and the registry.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/error.hh"
#include "workloads/graph.hh"
#include "workloads/synthetic.hh"
#include "workloads/workload.hh"

namespace emcc {
namespace {

WorkloadParams
tinyParams()
{
    WorkloadParams p;
    p.cores = 2;
    p.trace_len = 20'000;
    p.graph_vertices = 1 << 12;
    p.graph_degree = 8;
    p.footprint_scale = 1.0 / 64.0;
    return p;
}

TEST(Registry, NamesMatchPaper)
{
    EXPECT_EQ(irregularWorkloads().size(), 11u);
    EXPECT_EQ(regularWorkloads().size(), 15u);
    EXPECT_TRUE(isGraphWorkload("pageRank"));
    EXPECT_TRUE(isGraphWorkload("BFS"));
    EXPECT_FALSE(isGraphWorkload("canneal"));
    EXPECT_FALSE(isGraphWorkload("mcf"));
    EXPECT_FALSE(isGraphWorkload("blackscholes"));
}

TEST(Graph, RmatGeometry)
{
    Rng rng(1);
    CsrGraph g(1000, 8, rng);
    EXPECT_EQ(g.numVertices(), 1024u);   // rounded to power of two
    EXPECT_EQ(g.numEdges(), 1024u * 8);
    // Offsets consistent.
    std::uint64_t total = 0;
    for (std::uint64_t v = 0; v < g.numVertices(); ++v) {
        EXPECT_EQ(g.degree(v), g.edgeEnd(v) - g.edgeBegin(v));
        total += g.degree(v);
    }
    EXPECT_EQ(total, g.numEdges());
}

TEST(Graph, RmatIsSkewed)
{
    Rng rng(2);
    CsrGraph g(1 << 12, 8, rng);
    std::uint64_t max_deg = 0;
    for (std::uint64_t v = 0; v < g.numVertices(); ++v)
        max_deg = std::max(max_deg, g.degree(v));
    // Power-law-ish: hubs far above the average degree of 8.
    EXPECT_GT(max_deg, 64u);
}

TEST(Graph, AddressLayoutDisjoint)
{
    Rng rng(3);
    CsrGraph g(1 << 10, 4, rng);
    const Addr off_end = g.offsetsAddr(g.numVertices()) + 8;
    EXPECT_GE(g.edgeAddr(0), off_end);
    const Addr edges_end = g.edgeAddr(g.numEdges() - 1) + 4;
    EXPECT_GE(g.propAddr(0, 0), edges_end);
    EXPECT_GT(g.propAddr(1, 0), g.propAddr(0, g.numVertices() - 1));
    EXPECT_GE(g.footprint(2), g.propAddr(1, g.numVertices() - 1) + 8);
}

TEST(Workloads, DeterministicAcrossBuilds)
{
    const auto p = tinyParams();
    const auto a = buildWorkload("BFS", p);
    const auto b = buildWorkload("BFS", p);
    ASSERT_EQ(a.per_core.size(), b.per_core.size());
    for (size_t c = 0; c < a.per_core.size(); ++c) {
        ASSERT_EQ(a.per_core[c].size(), b.per_core[c].size());
        for (size_t i = 0; i < a.per_core[c].size(); i += 997) {
            EXPECT_EQ(a.per_core[c][i].vaddr, b.per_core[c][i].vaddr);
            EXPECT_EQ(a.per_core[c][i].is_write, b.per_core[c][i].is_write);
        }
    }
}

TEST(Workloads, TracesFillToLength)
{
    const auto p = tinyParams();
    for (const auto &name : {"pageRank", "canneal", "blackscholes"}) {
        const auto w = buildWorkload(name, p);
        ASSERT_EQ(w.per_core.size(), p.cores);
        for (const auto &t : w.per_core)
            EXPECT_EQ(t.size(), p.trace_len) << name;
    }
}

TEST(Workloads, AddressesWithinFootprint)
{
    const auto p = tinyParams();
    for (const auto &name : {"BFS", "mcf", "ferret"}) {
        const auto w = buildWorkload(name, p);
        for (const auto &t : w.per_core)
            for (size_t i = 0; i < t.size(); i += 101)
                ASSERT_LT(t[i].vaddr, w.footprint) << name;
    }
}

TEST(Workloads, GraphWorkloadsShareAddressSpace)
{
    const auto p = tinyParams();
    EXPECT_TRUE(buildWorkload("pageRank", p).shared_address_space);
    EXPECT_FALSE(buildWorkload("canneal", p).shared_address_space);
    EXPECT_FALSE(buildWorkload("leela_s", p).shared_address_space);
}

TEST(Workloads, GraphThreadsDiffer)
{
    const auto p = tinyParams();
    const auto w = buildWorkload("pageRank", p);
    ASSERT_EQ(w.per_core.size(), 2u);
    // Different vertex partitions -> different streams.
    int diff = 0;
    const size_t n = std::min(w.per_core[0].size(), w.per_core[1].size());
    for (size_t i = 0; i < n; i += 37)
        diff += (w.per_core[0][i].vaddr != w.per_core[1][i].vaddr);
    EXPECT_GT(diff, 10);
}

TEST(Workloads, IrregularWorkloadsTouchManyBlocks)
{
    const auto p = tinyParams();
    for (const auto &name : {"pageRank", "mcf", "canneal"}) {
        const auto w = buildWorkload(name, p);
        std::set<BlockNum> blocks;
        for (const auto &r : w.per_core[0])
            blocks.insert(blockNumber(r.vaddr));
        // Irregular: the trace touches a large block population.
        EXPECT_GT(blocks.size(), w.per_core[0].size() / 40) << name;
    }
}

TEST(Workloads, RegularMoreLocalThanIrregular)
{
    const auto p = tinyParams();
    auto distinct = [&](const std::string &name) {
        const auto w = buildWorkload(name, p);
        std::set<BlockNum> blocks;
        for (const auto &r : w.per_core[0])
            blocks.insert(blockNumber(r.vaddr));
        return static_cast<double>(blocks.size()) /
               static_cast<double>(w.per_core[0].size());
    };
    // exchange2_s (1 MiB footprint) is far more cache-friendly than mcf.
    EXPECT_LT(distinct("exchange2_s"), distinct("mcf"));
}

TEST(Workloads, WritesPresent)
{
    const auto p = tinyParams();
    for (const auto &name : {"pageRank", "canneal", "facesim"}) {
        const auto w = buildWorkload(name, p);
        const auto writes = std::count_if(
            w.per_core[0].begin(), w.per_core[0].end(),
            [](const MemRef &r) { return r.is_write; });
        EXPECT_GT(writes, 0) << name;
    }
}

TEST(Workloads, AllRegisteredNamesBuild)
{
    auto p = tinyParams();
    p.trace_len = 2'000;
    for (const auto &name : irregularWorkloads())
        EXPECT_GT(buildWorkload(name, p).totalRefs(), 0u) << name;
    for (const auto &name : regularWorkloads())
        EXPECT_GT(buildWorkload(name, p).totalRefs(), 0u) << name;
}

TEST(Workloads, UnknownNameIsFatal)
{
    EXPECT_THROW(buildWorkload("notABenchmark", tinyParams()),
                 FatalError);
}

TEST(TraceRecorder, SplitsMultiBlockAccesses)
{
    TraceRecorder r(100);
    r.load(Addr{60}, 5, 16);   // crosses a block boundary
    ASSERT_EQ(r.size(), 2u);
    EXPECT_EQ(r.trace()[0].vaddr, 0u);
    EXPECT_EQ(r.trace()[1].vaddr, 64u);
    EXPECT_EQ(r.trace()[0].gap, 5u);
    EXPECT_EQ(r.trace()[1].gap, 0u);   // gap only precedes the first
}

TEST(TraceRecorder, StopsAtLimit)
{
    TraceRecorder r(3);
    for (int i = 0; i < 10; ++i)
        r.store(Addr{static_cast<std::uint64_t>(i) * 64}, 1);
    EXPECT_TRUE(r.full());
    EXPECT_EQ(r.size(), 3u);
}

TEST(PatternMix, HotRegionConcentratesAccesses)
{
    synth::PatternMix mix;
    mix.footprint_bytes = 16_MiB;
    mix.stream = 0.0;
    mix.random = 1.0;
    mix.hot_bytes = 1_MiB;
    Rng rng(5);
    TraceRecorder r(20'000);
    synth::pattern(mix, rng, r);
    Count hot = 0;
    for (const auto &ref : r.trace())
        hot += (ref.vaddr < Addr{1_MiB});
    // 50% hot + 1/16 of the cold random ~ 53%.
    EXPECT_GT(hot, r.size() / 3);
}

} // namespace
} // namespace emcc

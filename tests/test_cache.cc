/**
 * @file
 * Unit tests for the set-associative cache array: hits/misses, LRU
 * eviction, dirty writebacks, invalidation, line classes, and the
 * per-class footprint cap EMCC uses for counters in L2.
 */

#include <gtest/gtest.h>

#include <cstdint>

#include "cache/cache.hh"
#include "cache/legacy_cache.hh"

namespace emcc {
namespace {

CacheArray
smallCache(unsigned sets = 4, unsigned assoc = 2)
{
    CacheArrayConfig cfg;
    cfg.assoc = assoc;
    cfg.size_bytes = static_cast<std::uint64_t>(sets) * assoc * kBlockBytes;
    return CacheArray("test", cfg);
}

/** Address landing in @p set with tag index @p tag (4-set cache). */
Addr
addrFor(unsigned set, unsigned tag, unsigned sets = 4)
{
    return Addr{(std::uint64_t{tag} * sets + set) * kBlockBytes};
}

TEST(CacheArray, Geometry)
{
    auto c = smallCache();
    EXPECT_EQ(c.numSets(), 4u);
    EXPECT_EQ(c.assoc(), 2u);
    EXPECT_EQ(c.sizeBytes(), 4u * 2 * kBlockBytes);
}

TEST(CacheArray, MissThenHit)
{
    auto c = smallCache();
    EXPECT_FALSE(c.access(Addr{0x100}, LineClass::Data, false));
    c.insert(Addr{0x100}, LineClass::Data, false);
    EXPECT_TRUE(c.access(Addr{0x100}, LineClass::Data, false));
    EXPECT_EQ(c.stats().misses[0], 1u);
    EXPECT_EQ(c.stats().hits[0], 1u);
}

TEST(CacheArray, SubBlockAddressesAlias)
{
    auto c = smallCache();
    c.insert(Addr{0x100}, LineClass::Data, false);
    EXPECT_TRUE(c.access(Addr{0x13f}, LineClass::Data, false));
    EXPECT_TRUE(c.contains(Addr{0x101}));
}

TEST(CacheArray, LruEviction)
{
    auto c = smallCache();
    const Addr a = addrFor(0, 1), b = addrFor(0, 2), d = addrFor(0, 3);
    c.insert(a, LineClass::Data, false);
    c.insert(b, LineClass::Data, false);
    // Touch a so b becomes LRU.
    EXPECT_TRUE(c.access(a, LineClass::Data, false));
    auto victim = c.insert(d, LineClass::Data, false);
    ASSERT_TRUE(victim.has_value());
    EXPECT_EQ(victim->addr, b);
    EXPECT_TRUE(c.contains(a));
    EXPECT_FALSE(c.contains(b));
}

TEST(CacheArray, DirtyVictimReported)
{
    auto c = smallCache();
    c.insert(addrFor(0, 1), LineClass::Data, true);
    c.insert(addrFor(0, 2), LineClass::Data, false);
    auto victim = c.insert(addrFor(0, 3), LineClass::Data, false);
    ASSERT_TRUE(victim.has_value());
    EXPECT_EQ(victim->addr, addrFor(0, 1));
    EXPECT_TRUE(victim->dirty);
    EXPECT_EQ(c.stats().dirty_evictions[0], 1u);
}

TEST(CacheArray, WriteMarksDirty)
{
    auto c = smallCache();
    c.insert(Addr{0x40}, LineClass::Data, false);
    EXPECT_TRUE(c.access(Addr{0x40}, LineClass::Data, true));
    auto inv = c.invalidate(Addr{0x40});
    ASSERT_TRUE(inv.has_value());
    EXPECT_TRUE(*inv);
}

TEST(CacheArray, MarkCleanClearsDirty)
{
    auto c = smallCache();
    c.insert(Addr{0x40}, LineClass::Data, true);
    c.markClean(Addr{0x40});
    auto inv = c.invalidate(Addr{0x40});
    ASSERT_TRUE(inv.has_value());
    EXPECT_FALSE(*inv);
}

TEST(CacheArray, InvalidateMissingReturnsNullopt)
{
    auto c = smallCache();
    EXPECT_FALSE(c.invalidate(Addr{0x999}).has_value());
}

TEST(CacheArray, ReinsertRefreshesNotEvicts)
{
    auto c = smallCache();
    c.insert(addrFor(0, 1), LineClass::Data, false);
    auto victim = c.insert(addrFor(0, 1), LineClass::Data, true);
    EXPECT_FALSE(victim.has_value());
    // Dirty flag sticky-ORed.
    auto inv = c.invalidate(addrFor(0, 1));
    ASSERT_TRUE(inv.has_value());
    EXPECT_TRUE(*inv);
}

TEST(CacheArray, ClassAccounting)
{
    auto c = smallCache();
    c.insert(addrFor(0, 1), LineClass::Data, false);
    c.insert(addrFor(1, 1), LineClass::Counter, false);
    c.insert(addrFor(2, 1), LineClass::TreeNode, false);
    EXPECT_EQ(c.classCount(LineClass::Data), 1u);
    EXPECT_EQ(c.classCount(LineClass::Counter), 1u);
    EXPECT_EQ(c.classCount(LineClass::TreeNode), 1u);
    EXPECT_EQ(*c.residentClass(addrFor(1, 1)), LineClass::Counter);
}

TEST(CacheArray, CounterCapEvictsCounterLru)
{
    // 8 sets x 4 ways, counters capped at 2 blocks.
    CacheArrayConfig cfg;
    cfg.assoc = 4;
    cfg.size_bytes = 8u * 4 * kBlockBytes;
    cfg.class_cap_bytes[static_cast<int>(LineClass::Counter)] =
        2 * kBlockBytes;
    CacheArray c("capped", cfg);

    // Counters in different sets, so set pressure is not the cause.
    const Addr c1 = addrFor(0, 1, 8), c2 = addrFor(1, 1, 8),
               c3 = addrFor(2, 1, 8);
    c.insert(c1, LineClass::Counter, false);
    c.insert(c2, LineClass::Counter, false);
    EXPECT_EQ(c.classCount(LineClass::Counter), 2u);
    c.insert(c3, LineClass::Counter, false);
    EXPECT_EQ(c.classCount(LineClass::Counter), 2u);
    EXPECT_FALSE(c.contains(c1));   // class-LRU evicted
    EXPECT_TRUE(c.contains(c2));
    EXPECT_TRUE(c.contains(c3));
}

TEST(CacheArray, CapDoesNotEvictData)
{
    CacheArrayConfig cfg;
    cfg.assoc = 4;
    cfg.size_bytes = 8u * 4 * kBlockBytes;
    cfg.class_cap_bytes[static_cast<int>(LineClass::Counter)] =
        kBlockBytes;
    CacheArray c("capped", cfg);
    c.insert(addrFor(0, 1, 8), LineClass::Data, false);
    c.insert(addrFor(1, 1, 8), LineClass::Counter, false);
    c.insert(addrFor(2, 1, 8), LineClass::Counter, false);
    EXPECT_TRUE(c.contains(addrFor(0, 1, 8)));
    EXPECT_EQ(c.classCount(LineClass::Counter), 1u);
    EXPECT_EQ(c.classCount(LineClass::Data), 1u);
}

TEST(CacheArray, TouchUpdatesClassLru)
{
    CacheArrayConfig cfg;
    cfg.assoc = 4;
    cfg.size_bytes = 8u * 4 * kBlockBytes;
    cfg.class_cap_bytes[static_cast<int>(LineClass::Counter)] =
        2 * kBlockBytes;
    CacheArray c("capped", cfg);
    const Addr c1 = addrFor(0, 1, 8), c2 = addrFor(1, 1, 8),
               c3 = addrFor(2, 1, 8);
    c.insert(c1, LineClass::Counter, false);
    c.insert(c2, LineClass::Counter, false);
    // Touch c1 so c2 is the class LRU.
    c.access(c1, LineClass::Counter, false);
    c.insert(c3, LineClass::Counter, false);
    EXPECT_TRUE(c.contains(c1));
    EXPECT_FALSE(c.contains(c2));
}

TEST(CacheArray, FlushAllEmpties)
{
    auto c = smallCache();
    c.insert(Addr{0x40}, LineClass::Data, true);
    c.insert(Addr{0x80}, LineClass::Counter, false);
    c.flushAll();
    EXPECT_FALSE(c.contains(Addr{0x40}));
    EXPECT_FALSE(c.contains(Addr{0x80}));
    EXPECT_EQ(c.classCount(LineClass::Data), 0u);
    EXPECT_EQ(c.classCount(LineClass::Counter), 0u);
}

TEST(CacheArray, NonPowerOfTwoSetCount)
{
    // 12 MB/core LLC sweeps produce non-power-of-two set counts; the
    // array must index correctly with modulo in that case.
    CacheArrayConfig cfg;
    cfg.assoc = 4;
    cfg.size_bytes = 12 * 4 * kBlockBytes;   // 12 sets
    CacheArray c("odd", cfg);
    EXPECT_EQ(c.numSets(), 12u);
    for (unsigned i = 0; i < 48; ++i)
        c.insert(Addr{std::uint64_t{i} * kBlockBytes}, LineClass::Data,
                 false);
    // Full occupancy reachable (every set usable).
    EXPECT_EQ(c.classCount(LineClass::Data), 48u);
    EXPECT_TRUE(c.access(Addr{47 * kBlockBytes}, LineClass::Data, false));
}

TEST(CacheArray, StatsAggregates)
{
    auto c = smallCache();
    c.access(Addr{0x40}, LineClass::Data, false);      // miss
    c.insert(Addr{0x40}, LineClass::Data, false);
    c.access(Addr{0x40}, LineClass::Counter, false);   // hit (counted as ctr)
    EXPECT_EQ(c.stats().hitsAll(), 1u);
    EXPECT_EQ(c.stats().missesAll(), 1u);
    c.resetStats();
    EXPECT_EQ(c.stats().hitsAll(), 0u);
}

// ---------------------------------------------------------------------
// Class-cap edge cases, run against BOTH the SoA array and the
// preserved node-based implementation: the differential harness in
// test_properties.cc checks agreement on random streams; these pin
// the corner-case semantics both must satisfy by name.

template <typename C>
class CacheImpl : public ::testing::Test
{
  protected:
    static C
    make(unsigned sets, unsigned assoc, std::uint64_t ctr_cap_blocks)
    {
        CacheArrayConfig cfg;
        cfg.assoc = assoc;
        cfg.size_bytes =
            static_cast<std::uint64_t>(sets) * assoc * kBlockBytes;
        cfg.class_cap_bytes[static_cast<int>(LineClass::Counter)] =
            ctr_cap_blocks * kBlockBytes;
        return C("edge", cfg);
    }
};

using CacheImpls = ::testing::Types<CacheArray, legacy::CacheArray>;
TYPED_TEST_SUITE(CacheImpl, CacheImpls);

TYPED_TEST(CacheImpl, CapExactlyOneBlockKeepsOnlyNewestCounter)
{
    auto c = this->make(8, 4, /*ctr_cap_blocks=*/1);
    const Addr c1 = addrFor(0, 1, 8), c2 = addrFor(1, 1, 8);
    c.insert(c1, LineClass::Counter, true);
    auto victim = c.insert(c2, LineClass::Counter, false);
    ASSERT_TRUE(victim.has_value());
    EXPECT_EQ(victim->addr, c1);
    EXPECT_EQ(victim->cls, LineClass::Counter);
    EXPECT_TRUE(victim->dirty);
    EXPECT_EQ(c.classCount(LineClass::Counter), 1u);
    EXPECT_FALSE(c.contains(c1));
    EXPECT_TRUE(c.contains(c2));
}

TYPED_TEST(CacheImpl, CapSmallerThanAssocBindsBeforeSetPressure)
{
    // assoc 4, counter cap 2: all counters map to the SAME set, which
    // still has free ways when the cap eviction must trigger.
    auto c = this->make(8, 4, /*ctr_cap_blocks=*/2);
    const Addr c1 = addrFor(0, 1, 8), c2 = addrFor(0, 2, 8),
               c3 = addrFor(0, 3, 8);
    c.insert(c1, LineClass::Counter, false);
    c.insert(c2, LineClass::Counter, false);
    auto victim = c.insert(c3, LineClass::Counter, false);
    ASSERT_TRUE(victim.has_value()) << "cap must evict with ways free";
    EXPECT_EQ(victim->addr, c1);
    EXPECT_EQ(c.classCount(LineClass::Counter), 2u);
}

TYPED_TEST(CacheImpl, CounterCapEvictsWhileVictimSetDataIsAllMru)
{
    // The cap victim is chosen from the counter class-LRU list, not
    // from set recency: make every data line in the victim counter's
    // set maximally recent and check the counter still goes.
    auto c = this->make(8, 4, /*ctr_cap_blocks=*/2);
    const Addr c1 = addrFor(0, 1, 8), c2 = addrFor(1, 1, 8),
               c3 = addrFor(2, 1, 8);
    const Addr d1 = addrFor(0, 2, 8), d2 = addrFor(0, 3, 8),
               d3 = addrFor(0, 4, 8);
    c.insert(c1, LineClass::Counter, false);
    c.insert(c2, LineClass::Counter, false);
    for (const Addr d : {d1, d2, d3}) {
        c.insert(d, LineClass::Data, false);
        c.access(d, LineClass::Data, false);   // MRU in c1's set
    }
    auto victim = c.insert(c3, LineClass::Counter, false);
    ASSERT_TRUE(victim.has_value());
    EXPECT_EQ(victim->addr, c1) << "must evict the class-LRU counter";
    EXPECT_EQ(victim->cls, LineClass::Counter);
    EXPECT_TRUE(c.contains(d1));
    EXPECT_TRUE(c.contains(d2));
    EXPECT_TRUE(c.contains(d3));
    EXPECT_EQ(c.classCount(LineClass::Data), 3u);
}

TYPED_TEST(CacheImpl, FlagSurvivesMarkClean)
{
    // §IV-F: the per-line flag (encrypted&unverified / decrypted-copy
    // bit) is orthogonal to the dirty bit — writing back a line must
    // not clear it.
    auto c = this->make(4, 2, 0);
    const Addr a = addrFor(0, 1);
    c.insert(a, LineClass::Data, true);
    c.setFlag(a, true);
    c.markClean(a);
    auto inv_dirty = c.invalidate(a);
    ASSERT_TRUE(inv_dirty.has_value());
    EXPECT_FALSE(*inv_dirty) << "markClean must clear dirty";
    c.insert(a, LineClass::Data, true);
    c.setFlag(a, true);
    c.markClean(a);
    EXPECT_TRUE(c.getFlag(a)) << "markClean must NOT clear the flag";
}

TYPED_TEST(CacheImpl, ReinsertedCounterIsNotNextCapVictim)
{
    // Regression for the class-LRU refresh on re-insert: inserting an
    // already-resident counter must move it to class-MRU, so the NEXT
    // cap eviction takes the other counter. (A stale class-LRU
    // position here would thrash the hottest counter block.)
    auto c = this->make(8, 4, /*ctr_cap_blocks=*/2);
    const Addr c1 = addrFor(0, 1, 8), c2 = addrFor(1, 1, 8),
               c3 = addrFor(2, 1, 8);
    c.insert(c1, LineClass::Counter, false);
    c.insert(c2, LineClass::Counter, false);
    // Re-insert c1 (e.g. a refill of the same block): refreshes LRU.
    auto refreshed = c.insert(c1, LineClass::Counter, false);
    EXPECT_FALSE(refreshed.has_value());
    auto victim = c.insert(c3, LineClass::Counter, false);
    ASSERT_TRUE(victim.has_value());
    EXPECT_EQ(victim->addr, c2) << "re-inserted counter became MRU";
    EXPECT_TRUE(c.contains(c1));
    EXPECT_FALSE(c.contains(c2));
}

} // namespace
} // namespace emcc

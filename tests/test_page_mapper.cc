/**
 * @file
 * Tests for the virtual-to-physical page mapper: determinism, frame
 * disjointness, page-size behaviour (the 2 MB vs 4 KB distinction that
 * drives the Morphable page-size ablation).
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <set>

#include "system/page_mapper.hh"

namespace emcc {
namespace {

TEST(PageMapper, OffsetsPreservedWithinPage)
{
    PageMapper m(2_MiB, 1_GiB, 1);
    const Addr pa = m.translate(Addr{0x1234});
    EXPECT_EQ(pa & (2_MiB - 1), 0x1234u);
}

TEST(PageMapper, StableAcrossCalls)
{
    PageMapper m(4_KiB, 1_GiB, 2);
    const Addr a = m.translate(Addr{0x8000});
    EXPECT_EQ(m.translate(Addr{0x8000}), a);
    EXPECT_EQ(m.translate(Addr{0x8008}), a + 8);
}

TEST(PageMapper, DeterministicAcrossInstances)
{
    PageMapper a(2_MiB, 1_GiB, 7), b(2_MiB, 1_GiB, 7);
    for (Addr v{}; v < Addr{64_MiB}; v += 3_MiB + 123)
        EXPECT_EQ(a.translate(v), b.translate(v));
}

TEST(PageMapper, DistinctPagesGetDistinctFrames)
{
    PageMapper m(4_KiB, 256_MiB, 3);
    std::set<std::uint64_t> frames;
    for (Addr v{}; v < Addr{1024 * 4_KiB}; v += 4_KiB)
        EXPECT_TRUE(frames.insert(m.translate(v) / 4_KiB).second);
    EXPECT_EQ(m.mappedPages(), 1024u);
}

TEST(PageMapper, HugePagesKeepCounterCoverageTogether)
{
    // Two 4 KiB-adjacent virtual addresses share a Morphable counter
    // block (8 KiB coverage) under 2 MiB pages, but usually not under
    // 4 KiB pages — the paper's §III argument.
    PageMapper huge(2_MiB, 8_GiB, 11);
    const Addr a = huge.translate(Addr{0x0});
    const Addr b = huge.translate(Addr{0x1000});   // next 4 KiB page
    EXPECT_EQ(a / 8192, b / 8192);

    PageMapper small(4_KiB, 8_GiB, 11);
    unsigned together = 0;
    for (int i = 0; i < 64; ++i) {
        const Addr v{static_cast<std::uint64_t>(i) * 8192};
        const Addr p1 = small.translate(v);
        const Addr p2 = small.translate(v + 4096);
        together += (p1 / 8192 == p2 / 8192);
    }
    // Random 4 KiB frames almost never land in the same 8 KiB region.
    EXPECT_LT(together, 8u);
}

TEST(PageMapper, RandomizedFramesSpread)
{
    PageMapper m(2_MiB, 8_GiB, 5);
    std::set<std::uint64_t> frames;
    for (std::uint64_t v = 0; v < 32; ++v)
        frames.insert(m.translate(Addr{v * 2_MiB}) / 2_MiB);
    EXPECT_EQ(frames.size(), 32u);
    // Not identity-mapped (randomized placement).
    bool identity = true;
    for (std::uint64_t v = 0; v < 32; ++v)
        identity &= (m.translate(Addr{v * 2_MiB}) == Addr{v * 2_MiB});
    EXPECT_FALSE(identity);
}

} // namespace
} // namespace emcc

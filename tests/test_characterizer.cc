/**
 * @file
 * Tests for the functional (Pintool-mode) characterizer: traffic
 * accounting, counter hit/miss buckets, EMCC useless-counter tracking,
 * and the cross-scheme relationships the paper's Figs 2/6/11/12 rest
 * on.
 */

#include <gtest/gtest.h>

#include "system/characterizer.hh"

namespace emcc {
namespace {

WorkloadParams
tinyParams()
{
    WorkloadParams p;
    p.cores = 2;
    p.trace_len = 60'000;
    p.graph_vertices = 1 << 15;
    p.graph_degree = 8;
    p.footprint_scale = 1.0 / 32.0;
    return p;
}

CharacterizerConfig
tinyConfig(Scheme scheme)
{
    CharacterizerConfig cfg;
    cfg.cores = 2;
    cfg.l2_bytes = 64_KiB;
    cfg.llc_bytes_per_core = 128_KiB;
    cfg.mc_ctr_cache_bytes = 8_KiB;
    cfg.l2_ctr_cap_bytes = 4_KiB;
    cfg.scheme = scheme;
    cfg.data_region_bytes = 1_GiB;
    return cfg;
}

const WorkloadSet &
bfsWorkload()
{
    static const WorkloadSet w = buildWorkload("BFS", tinyParams());
    return w;
}

TEST(Characterizer, BasicConservation)
{
    Characterizer c(tinyConfig(Scheme::LlcBaseline));
    c.run(bfsWorkload());
    const auto &r = c.results();
    EXPECT_EQ(r.data_refs, bfsWorkload().totalRefs());
    EXPECT_GE(r.l2_data_misses, r.data_reads_at_mc);
    EXPECT_EQ(r.dram_data_reads, r.data_reads_at_mc);
    // Every read reaching the MC lands in exactly one counter bucket.
    EXPECT_EQ(r.mc_ctr_hits + r.llc_ctr_hits + r.llc_ctr_misses,
              r.data_reads_at_mc);
}

TEST(Characterizer, NonSecureHasNoMetadataTraffic)
{
    Characterizer c(tinyConfig(Scheme::NonSecure));
    c.run(bfsWorkload());
    const auto &r = c.results();
    EXPECT_EQ(r.dram_ctr_reads, 0u);
    EXPECT_EQ(r.dram_ctr_writes, 0u);
    EXPECT_EQ(r.mc_ctr_hits + r.llc_ctr_hits + r.llc_ctr_misses, 0u);
}

TEST(Characterizer, CachingCountersInLlcReducesDramCounterTraffic)
{
    // The Fig-2 headline: LLC counter caching cuts DRAM traffic
    // overhead substantially.
    Characterizer without(tinyConfig(Scheme::McOnly));
    without.run(bfsWorkload());
    Characterizer with(tinyConfig(Scheme::LlcBaseline));
    with.run(bfsWorkload());
    EXPECT_LT(with.results().dram_ctr_reads,
              without.results().dram_ctr_reads);
}

TEST(Characterizer, McOnlyNeverHitsLlcCounters)
{
    Characterizer c(tinyConfig(Scheme::McOnly));
    c.run(bfsWorkload());
    EXPECT_EQ(c.results().llc_ctr_hits, 0u);
    EXPECT_EQ(c.results().baseline_ctr_accesses_to_llc, 0u);
}

TEST(Characterizer, EmccTracksL2CounterActivity)
{
    Characterizer c(tinyConfig(Scheme::Emcc));
    c.run(bfsWorkload());
    const auto &r = c.results();
    EXPECT_GT(r.l2_ctr_inserts, 0u);
    EXPECT_GT(r.emcc_ctr_accesses_to_llc, 0u);
    // Per paper definition, every L2 data miss triggers exactly one L2
    // counter lookup (hit or miss).
    EXPECT_EQ(r.l2_ctr_hits + r.l2_ctr_misses, r.l2_data_misses);
    EXPECT_EQ(r.emcc_ctr_accesses_to_llc, r.l2_ctr_misses);
    // Useless accesses are a subset of inserts.
    EXPECT_LE(r.useless_ctr_accesses, r.l2_ctr_inserts);
}

TEST(Characterizer, EmccUselessFractionIsSmall)
{
    // The Fig-11 claim: caching counters in L2 filters almost all
    // useless counter fetches (paper: 3.2% of L2 data misses for the
    // irregular set).
    Characterizer c(tinyConfig(Scheme::Emcc));
    c.run(bfsWorkload());
    const auto &r = c.results();
    ASSERT_GT(r.l2_data_misses, 0u);
    const double useless = static_cast<double>(r.useless_ctr_accesses) /
                           static_cast<double>(r.l2_data_misses);
    EXPECT_LT(useless, 0.25);
}

TEST(Characterizer, EmccL2FiltersLlcCounterAccesses)
{
    // The L2 counter cache should filter out many counter requests that
    // the baseline design would *conceptually* make; EMCC's counter
    // accesses to LLC stay within a modest factor of the baseline's
    // (Fig 12: 35.6% vs 31.4% of L2 data misses).
    Characterizer emcc(tinyConfig(Scheme::Emcc));
    emcc.run(bfsWorkload());
    Characterizer base(tinyConfig(Scheme::LlcBaseline));
    base.run(bfsWorkload());
    const double emcc_rate =
        static_cast<double>(emcc.results().emcc_ctr_accesses_to_llc) /
        static_cast<double>(emcc.results().l2_data_misses);
    const double base_rate =
        static_cast<double>(base.results().baseline_ctr_accesses_to_llc) /
        static_cast<double>(base.results().l2_data_misses);
    EXPECT_GT(emcc_rate, 0.0);
    EXPECT_GT(base_rate, 0.0);
    EXPECT_LT(emcc_rate, base_rate + 0.5);
}

TEST(Characterizer, WritebacksGenerateCounterUpdatesAndInvalidations)
{
    Characterizer c(tinyConfig(Scheme::Emcc));
    c.run(bfsWorkload());
    const auto &r = c.results();
    EXPECT_GT(r.dram_data_writes, 0u);
    // Counter invalidations in L2 occur but are rare (Fig 23: 1.7% of
    // inserts on average).
    EXPECT_LE(r.l2_ctr_invalidations, r.l2_ctr_inserts);
}

TEST(Characterizer, BiggerLlcImprovesCounterHitRate)
{
    auto small = tinyConfig(Scheme::LlcBaseline);
    auto big = tinyConfig(Scheme::LlcBaseline);
    big.llc_bytes_per_core = 1_MiB;
    Characterizer cs(small), cb(big);
    cs.run(bfsWorkload());
    cb.run(bfsWorkload());
    const double small_miss =
        static_cast<double>(cs.results().llc_ctr_misses) /
        static_cast<double>(cs.results().data_reads_at_mc);
    const double big_miss =
        static_cast<double>(cb.results().llc_ctr_misses) /
        static_cast<double>(cb.results().data_reads_at_mc);
    // Counter misses shrink (or stay flat within noise) with a bigger
    // LLC; the paper's Fig-7 point is that the improvement is small.
    EXPECT_LE(big_miss, small_miss * 1.2 + 0.005);
}

TEST(Characterizer, SmallFootprintWorkloadMostlyHitsCaches)
{
    auto p = tinyParams();
    const auto w = buildWorkload("exchange2_s", p);
    auto cfg = tinyConfig(Scheme::Emcc);
    Characterizer c(cfg);
    c.run(w);
    const auto &r = c.results();
    // 1 MiB scaled footprint in 64 KiB L2 + 256 KiB LLC: most refs hit.
    EXPECT_LT(r.data_reads_at_mc, r.data_refs / 4);
}

TEST(Characterizer, MorphableCoversMoreThanSc64)
{
    auto morph_cfg = tinyConfig(Scheme::LlcBaseline);
    auto sc_cfg = tinyConfig(Scheme::LlcBaseline);
    sc_cfg.design = CounterDesignKind::Sc64;
    Characterizer morph(morph_cfg), sc(sc_cfg);
    morph.run(bfsWorkload());
    sc.run(bfsWorkload());
    // Morphable's 8 KiB coverage -> fewer counter misses than SC-64's
    // 4 KiB for the same workload.
    EXPECT_LE(morph.results().llc_ctr_misses,
              sc.results().llc_ctr_misses);
}

} // namespace
} // namespace emcc

/**
 * @file
 * Unit tests for the MSHR file: allocation, merging, capacity, and
 * completion fan-out. Callbacks are pooled FinishCb handles, so every
 * test carries its own FinishPool; closures left un-run at test end
 * (capacity and leak tests) are reclaimed by the pool destructor.
 */

#include <gtest/gtest.h>

#include <vector>

#include "cache/mshr.hh"
#include "sim/finish_pool.hh"

namespace emcc {
namespace {

TEST(Mshr, NewMissThenMerge)
{
    FinishPool fp;
    MshrFile m(4);
    std::vector<Tick> fills;
    EXPECT_EQ(m.allocate(Addr{0x100},
                         fp.make([&](Tick t) { fills.push_back(t); })),
              MshrOutcome::NewMiss);
    EXPECT_EQ(m.allocate(Addr{0x110},
                         fp.make([&](Tick t) { fills.push_back(t); })),
              MshrOutcome::Merged);   // same block
    EXPECT_TRUE(m.outstanding(Addr{0x13f}));
    EXPECT_EQ(m.inUse(), 1u);
    EXPECT_EQ(m.complete(Addr{0x100}, Tick{42}), 2u);
    EXPECT_EQ(fills, (std::vector<Tick>{Tick{42}, Tick{42}}));
    EXPECT_FALSE(m.outstanding(Addr{0x100}));
}

TEST(Mshr, DistinctBlocksGetDistinctEntries)
{
    FinishPool fp;
    MshrFile m(4);
    EXPECT_EQ(m.allocate(Addr{0x000}, fp.make([](Tick) {})),
              MshrOutcome::NewMiss);
    EXPECT_EQ(m.allocate(Addr{0x040}, fp.make([](Tick) {})),
              MshrOutcome::NewMiss);
    EXPECT_EQ(m.inUse(), 2u);
}

TEST(Mshr, FullWhenCapacityReached)
{
    FinishPool fp;
    MshrFile m(2);
    EXPECT_EQ(m.allocate(Addr{0x000}, fp.make([](Tick) {})),
              MshrOutcome::NewMiss);
    EXPECT_EQ(m.allocate(Addr{0x040}, fp.make([](Tick) {})),
              MshrOutcome::NewMiss);
    EXPECT_EQ(m.allocate(Addr{0x080}, fp.make([](Tick) {})),
              MshrOutcome::Full);
    // Merging into an existing entry still works when full.
    EXPECT_EQ(m.allocate(Addr{0x040}, fp.make([](Tick) {})),
              MshrOutcome::Merged);
    EXPECT_EQ(m.fullStalls(), 1u);
}

TEST(Mshr, CompleteUnknownBlockIsNoop)
{
    MshrFile m(2);
    EXPECT_EQ(m.complete(Addr{0x500}, Tick{1}), 0u);
}

TEST(Mshr, CountersTrack)
{
    FinishPool fp;
    MshrFile m(4);
    m.allocate(Addr{0x000}, fp.make([](Tick) {}));
    m.allocate(Addr{0x000}, fp.make([](Tick) {}));
    m.allocate(Addr{0x040}, fp.make([](Tick) {}));
    EXPECT_EQ(m.allocated(), 2u);
    EXPECT_EQ(m.merged(), 1u);
}

TEST(Mshr, ReallocAfterComplete)
{
    FinishPool fp;
    MshrFile m(1);
    EXPECT_EQ(m.allocate(Addr{0x000}, fp.make([](Tick) {})),
              MshrOutcome::NewMiss);
    m.complete(Addr{0x000}, Tick{5});
    EXPECT_EQ(m.allocate(Addr{0x000}, fp.make([](Tick) {})),
              MshrOutcome::NewMiss);
}

TEST(Mshr, ForEachOutstandingVisitsInAddressOrder)
{
    // Regression: this used to iterate the underlying unordered_map
    // directly, so the watchdog's diagnostic dump came out in hash
    // order — nondeterministic across libstdc++ versions and runs.
    FinishPool fp;
    MshrFile m(8);
    for (Addr a : {Addr{0x1c0}, Addr{0x040}, Addr{0x100}, Addr{0x080}})
        m.allocate(a, fp.make([](Tick) {}));
    m.allocate(Addr{0x100}, fp.make([](Tick) {}));  // merged: 2 waiters

    std::vector<Addr> order;
    std::vector<unsigned> waiters;
    m.forEachOutstanding([&](Addr a, unsigned n) {
        order.push_back(a);
        waiters.push_back(n);
    });
    EXPECT_EQ(order, (std::vector<Addr>{Addr{0x040}, Addr{0x080},
                                        Addr{0x100}, Addr{0x1c0}}));
    EXPECT_EQ(waiters, (std::vector<unsigned>{1, 1, 2, 1}));
}

} // namespace
} // namespace emcc

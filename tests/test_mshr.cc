/**
 * @file
 * Unit tests for the MSHR file: allocation, merging, capacity, and
 * completion fan-out.
 */

#include <gtest/gtest.h>

#include <vector>

#include "cache/mshr.hh"

namespace emcc {
namespace {

TEST(Mshr, NewMissThenMerge)
{
    MshrFile m(4);
    std::vector<Tick> fills;
    EXPECT_EQ(m.allocate(0x100, [&](Tick t) { fills.push_back(t); }),
              MshrOutcome::NewMiss);
    EXPECT_EQ(m.allocate(0x110, [&](Tick t) { fills.push_back(t); }),
              MshrOutcome::Merged);   // same block
    EXPECT_TRUE(m.outstanding(0x13f));
    EXPECT_EQ(m.inUse(), 1u);
    EXPECT_EQ(m.complete(0x100, 42), 2u);
    EXPECT_EQ(fills, (std::vector<Tick>{42, 42}));
    EXPECT_FALSE(m.outstanding(0x100));
}

TEST(Mshr, DistinctBlocksGetDistinctEntries)
{
    MshrFile m(4);
    EXPECT_EQ(m.allocate(0x000, [](Tick) {}), MshrOutcome::NewMiss);
    EXPECT_EQ(m.allocate(0x040, [](Tick) {}), MshrOutcome::NewMiss);
    EXPECT_EQ(m.inUse(), 2u);
}

TEST(Mshr, FullWhenCapacityReached)
{
    MshrFile m(2);
    EXPECT_EQ(m.allocate(0x000, [](Tick) {}), MshrOutcome::NewMiss);
    EXPECT_EQ(m.allocate(0x040, [](Tick) {}), MshrOutcome::NewMiss);
    EXPECT_EQ(m.allocate(0x080, [](Tick) {}), MshrOutcome::Full);
    // Merging into an existing entry still works when full.
    EXPECT_EQ(m.allocate(0x040, [](Tick) {}), MshrOutcome::Merged);
    EXPECT_EQ(m.fullStalls(), 1u);
}

TEST(Mshr, CompleteUnknownBlockIsNoop)
{
    MshrFile m(2);
    EXPECT_EQ(m.complete(0x500, 1), 0u);
}

TEST(Mshr, CountersTrack)
{
    MshrFile m(4);
    m.allocate(0x000, [](Tick) {});
    m.allocate(0x000, [](Tick) {});
    m.allocate(0x040, [](Tick) {});
    EXPECT_EQ(m.allocated(), 2u);
    EXPECT_EQ(m.merged(), 1u);
}

TEST(Mshr, ReallocAfterComplete)
{
    MshrFile m(1);
    EXPECT_EQ(m.allocate(0x000, [](Tick) {}), MshrOutcome::NewMiss);
    m.complete(0x000, 5);
    EXPECT_EQ(m.allocate(0x000, [](Tick) {}), MshrOutcome::NewMiss);
}

} // namespace
} // namespace emcc

/**
 * @file
 * Unit tests for the NoC mesh geometry (paper Fig 4): tile placement,
 * hop counts, routes, and the address-to-slice mapping.
 */

#include <gtest/gtest.h>

#include <set>

#include "noc/mesh.hh"

namespace emcc {
namespace {

TEST(Mesh, DefaultTopologyMatchesFig4)
{
    MeshTopology m;
    EXPECT_EQ(m.cols(), 6);
    EXPECT_EQ(m.rows(), 5);
    EXPECT_EQ(m.numCores(), 28);
    EXPECT_EQ(m.numSlices(), 28);
    EXPECT_EQ(m.numMcs(), 2);
    // MC1 on the left edge of row 1, MC2 on the right edge of row 3.
    EXPECT_EQ(m.mcTile(0).col, 0);
    EXPECT_EQ(m.mcTile(0).row, 1);
    EXPECT_EQ(m.mcTile(1).col, 5);
    EXPECT_EQ(m.mcTile(1).row, 3);
}

TEST(Mesh, CoreZeroIsTopLeft)
{
    MeshTopology m;
    EXPECT_EQ(m.coreTile(0).col, 0);
    EXPECT_EQ(m.coreTile(0).row, 0);
    // Row 0 holds cores 0..5 like Fig 4.
    EXPECT_EQ(m.coreTile(5).col, 5);
    EXPECT_EQ(m.coreTile(5).row, 0);
}

TEST(Mesh, HopsAreManhattan)
{
    MeshTopology m;
    EXPECT_EQ(m.hopsCoreToSlice(0, 0), 0);
    // Core 0 (0,0) to core 5's slice (5,0): 5 hops.
    EXPECT_EQ(m.hopsCoreToSlice(0, 5), 5);
    // Symmetry.
    for (int s = 0; s < m.numSlices(); s += 5)
        EXPECT_EQ(m.hopsCoreToSlice(0, s), m.hopsCoreToSlice(s, 0));
}

TEST(Mesh, RouteEndsAtEndpoints)
{
    MeshTopology m;
    const auto path = m.route(m.coreTile(0), m.mcTile(1));
    ASSERT_GE(path.size(), 2u);
    EXPECT_EQ(path.front(), std::make_pair(0, 0));
    EXPECT_EQ(path.back(), std::make_pair(5, 3));
    // Route length = hops + 1 (XY routing).
    EXPECT_EQ(static_cast<int>(path.size()) - 1,
              MeshTopology::hops(m.coreTile(0), m.mcTile(1)));
    // Adjacent waypoints differ by exactly one hop.
    for (size_t i = 1; i < path.size(); ++i) {
        const int d = std::abs(path[i].first - path[i - 1].first) +
                      std::abs(path[i].second - path[i - 1].second);
        EXPECT_EQ(d, 1);
    }
}

TEST(Mesh, SliceMappingIsStable)
{
    MeshTopology m;
    const Addr a{0x123456780};
    EXPECT_EQ(m.sliceForAddr(a), m.sliceForAddr(a));
    EXPECT_EQ(m.sliceForAddr(a), m.sliceForAddr(a + 1));   // same block
}

TEST(Mesh, SliceMappingSpreadsBlocks)
{
    MeshTopology m;
    std::set<int> slices;
    for (Addr a{}; a < Addr{512 * kBlockBytes}; a += kBlockBytes)
        slices.insert(m.sliceForAddr(a));
    // 512 blocks over 28 slices should touch nearly all of them.
    EXPECT_GE(slices.size(), 24u);
    for (int s : slices) {
        EXPECT_GE(s, 0);
        EXPECT_LT(s, m.numSlices());
    }
}

TEST(Mesh, McMappingInRange)
{
    MeshTopology m;
    for (Addr a{}; a < Addr{64 * kBlockBytes}; a += kBlockBytes) {
        const int mc = m.mcForAddr(a);
        EXPECT_GE(mc, 0);
        EXPECT_LT(mc, m.numMcs());
    }
}

TEST(Mesh, NearestMcSane)
{
    MeshTopology m;
    for (int s = 0; s < m.numSlices(); ++s) {
        const int best = m.nearestMcToSlice(s);
        for (int other = 0; other < m.numMcs(); ++other)
            EXPECT_LE(m.hopsSliceToMc(s, best), m.hopsSliceToMc(s, other));
    }
}

TEST(Mesh, RenderShowsTiles)
{
    MeshTopology m;
    const std::string art = m.render();
    EXPECT_NE(art.find("C0"), std::string::npos);
    EXPECT_NE(art.find("MC1"), std::string::npos);
    EXPECT_NE(art.find("MC2"), std::string::npos);
}

TEST(Mesh, CustomGeometry)
{
    MeshTopology m(4, 3, 1);
    EXPECT_EQ(m.numCores(), 11);
    EXPECT_EQ(m.numMcs(), 1);
}

} // namespace
} // namespace emcc

/**
 * @file
 * Integration tests for the full timing system: the four schemes run
 * end-to-end on real workload traces and their results obey the
 * paper's qualitative relationships (non-secure fastest, EMCC ahead of
 * the LLC baseline, sane latency/stat accounting).
 */

#include <gtest/gtest.h>

#include <memory>

#include "system/secure_system.hh"

namespace emcc {
namespace {

WorkloadParams
tinyParams()
{
    WorkloadParams p;
    p.cores = 2;
    p.trace_len = 60'000;
    p.graph_vertices = 1 << 15;
    p.graph_degree = 8;
    p.footprint_scale = 1.0 / 32.0;
    return p;
}

SystemConfig
tinyConfig(Scheme scheme)
{
    SystemConfig cfg;
    cfg.cores = 2;
    cfg.l1_bytes = 16_KiB;
    cfg.l2_bytes = 64_KiB;
    cfg.llc_bytes = 256_KiB;
    cfg.mc_ctr_cache_bytes = 8_KiB;
    cfg.l2_ctr_cap_bytes = 4_KiB;
    cfg.data_region_bytes = 1_GiB;
    cfg.scheme = scheme;
    return cfg;
}

const WorkloadSet &
bfsWorkload()
{
    static const WorkloadSet w = buildWorkload("BFS", tinyParams());
    return w;
}

RunResults
runScheme(Scheme scheme, Count warm = 50'000, Count measure = 100'000,
          SystemConfig *override_cfg = nullptr)
{
    Simulator sim;
    SystemConfig cfg = override_cfg ? *override_cfg : tinyConfig(scheme);
    SecureSystem sys(sim, cfg, &bfsWorkload());
    sys.run(warm, measure);
    return sys.results();
}

TEST(SecureSystem, RunsToCompletion)
{
    const auto r = runScheme(Scheme::Emcc);
    EXPECT_GT(r.total_ipc, 0.0);
    EXPECT_GT(r.duration_ns, 0.0);
    EXPECT_GT(r.sys.data_reads, 0u);
    EXPECT_GT(r.dram.readsAll(), 0u);
}

TEST(SecureSystem, NonSecureIsFastest)
{
    const auto ns = runScheme(Scheme::NonSecure);
    const auto base = runScheme(Scheme::LlcBaseline);
    const auto emcc = runScheme(Scheme::Emcc);
    EXPECT_GE(ns.total_ipc, base.total_ipc * 0.999);
    EXPECT_GE(ns.total_ipc, emcc.total_ipc * 0.999);
}

TEST(SecureSystem, EmccBeatsBaseline)
{
    // The headline relationship on an irregular workload with high
    // counter miss rates.
    const auto base = runScheme(Scheme::LlcBaseline);
    const auto emcc = runScheme(Scheme::Emcc);
    EXPECT_GT(emcc.total_ipc, base.total_ipc * 0.995);
}

TEST(SecureSystem, EmccReducesL2MissLatency)
{
    const auto base = runScheme(Scheme::LlcBaseline);
    const auto emcc = runScheme(Scheme::Emcc);
    const double base_lat = base.sys.l2_miss_latency_sum_ns /
        static_cast<double>(base.sys.l2_miss_latency_count);
    const double emcc_lat = emcc.sys.l2_miss_latency_sum_ns /
        static_cast<double>(emcc.sys.l2_miss_latency_count);
    EXPECT_LT(emcc_lat, base_lat);
}

TEST(SecureSystem, NonSecureHasNoMetadata)
{
    const auto r = runScheme(Scheme::NonSecure);
    EXPECT_EQ(r.dram.reads[static_cast<int>(MemClass::Counter)], 0u);
    EXPECT_EQ(r.sys.mc_ctr_hits + r.sys.llc_ctr_hits +
                  r.sys.llc_ctr_misses, 0u);
    EXPECT_EQ(r.sys.decrypted_at_l2 + r.sys.decrypted_at_mc, 0u);
}

TEST(SecureSystem, SecureSchemesFetchCounters)
{
    const auto r = runScheme(Scheme::LlcBaseline);
    EXPECT_GT(r.sys.mc_ctr_hits + r.sys.llc_ctr_hits +
                  r.sys.llc_ctr_misses, 0u);
    EXPECT_GT(r.dram.reads[static_cast<int>(MemClass::Counter)], 0u);
}

TEST(SecureSystem, CounterBucketsMatchMcReads)
{
    const auto r = runScheme(Scheme::LlcBaseline);
    EXPECT_EQ(r.sys.mc_ctr_hits + r.sys.llc_ctr_hits +
                  r.sys.llc_ctr_misses,
              r.sys.llc_data_misses);
}

TEST(SecureSystem, EmccSplitsDecryptionBetweenL2AndMc)
{
    const auto r = runScheme(Scheme::Emcc);
    EXPECT_GT(r.sys.decrypted_at_l2, 0u);
    // All LLC data misses get decrypted somewhere.
    EXPECT_EQ(r.sys.decrypted_at_l2 + r.sys.decrypted_at_mc,
              r.sys.llc_data_misses);
    // With counters mostly resident, L2 should take a healthy share.
    EXPECT_GT(static_cast<double>(r.sys.decrypted_at_l2),
              0.2 * static_cast<double>(r.sys.llc_data_misses));
}

TEST(SecureSystem, EmccAccountsCounterActivity)
{
    const auto r = runScheme(Scheme::Emcc);
    EXPECT_EQ(r.sys.emcc_l2_ctr_hits + r.sys.emcc_l2_ctr_misses,
              r.sys.l2_data_misses);
    EXPECT_LE(r.sys.useless_ctr_accesses, r.sys.l2_ctr_inserts);
    EXPECT_LE(r.sys.l2_ctr_invalidations, r.sys.l2_ctr_inserts);
}

TEST(SecureSystem, BaselineCountsLlcCounterAccesses)
{
    const auto r = runScheme(Scheme::LlcBaseline);
    EXPECT_GT(r.sys.baseline_ctr_accesses_to_llc, 0u);
    const auto emcc = runScheme(Scheme::Emcc);
    EXPECT_GT(emcc.sys.emcc_ctr_accesses_to_llc, 0u);
}

TEST(SecureSystem, L2MissLatencyInPlausibleRange)
{
    const auto r = runScheme(Scheme::Emcc);
    ASSERT_GT(r.sys.l2_miss_latency_count, 0u);
    const double avg = r.sys.l2_miss_latency_sum_ns /
        static_cast<double>(r.sys.l2_miss_latency_count);
    // Between an LLC hit (~17 ns after the L2 miss) and a heavily
    // queued DRAM access.
    EXPECT_GT(avg, 10.0);
    EXPECT_LT(avg, 2000.0);
}

TEST(SecureSystem, DramTrafficBalances)
{
    const auto r = runScheme(Scheme::LlcBaseline);
    // Data reads at DRAM = LLC data misses (modulo in-flight tail).
    const auto dram_reads =
        r.dram.reads[static_cast<int>(MemClass::Data)];
    EXPECT_NEAR(static_cast<double>(dram_reads),
                static_cast<double>(r.sys.llc_data_misses),
                0.15 * static_cast<double>(r.sys.llc_data_misses) + 20);
}

TEST(SecureSystem, AesPoolsUsedPerScheme)
{
    Simulator sim_b;
    SystemConfig cfg_b = tinyConfig(Scheme::LlcBaseline);
    SecureSystem base(sim_b, cfg_b, &bfsWorkload());
    base.run(20'000, 50'000);
    EXPECT_GT(base.mcAesPool().ops(), 0u);
    EXPECT_EQ(base.l2AesPool(0).ops(), 0u);

    Simulator sim_e;
    SystemConfig cfg_e = tinyConfig(Scheme::Emcc);
    SecureSystem emcc(sim_e, cfg_e, &bfsWorkload());
    emcc.run(20'000, 50'000);
    EXPECT_GT(emcc.l2AesPool(0).ops() + emcc.l2AesPool(1).ops(), 0u);
}

TEST(SecureSystem, XptShortensMissPath)
{
    SystemConfig with = tinyConfig(Scheme::Emcc);
    with.xpt = true;
    const auto r_with = runScheme(Scheme::Emcc, 50'000, 100'000, &with);
    const auto r_without = runScheme(Scheme::Emcc);
    EXPECT_GE(r_with.total_ipc, r_without.total_ipc * 0.98);
}

TEST(SecureSystem, ConfigTableRenders)
{
    const SystemConfig cfg;
    const std::string table = cfg.renderTable();
    EXPECT_NE(table.find("L2 Cache"), std::string::npos);
    EXPECT_NE(table.find("FR-FCFS"), std::string::npos);
    EXPECT_NE(table.find("Morphable"), std::string::npos);
}

TEST(SecureSystem, LeakReportCleanPredicate)
{
    // The CLI's --leak-strict exit code hinges on clean(): drained
    // stragglers are fine, anything still in flight is a leak.
    LeakReport lk;
    lk.drained_events = 12;
    EXPECT_TRUE(lk.clean());
    EXPECT_NE(lk.render().find("clean"), std::string::npos);

    for (Count LeakReport::*field :
         {&LeakReport::undrained_events, &LeakReport::stuck_mshr_entries,
          &LeakReport::queued_dram_requests}) {
        LeakReport bad;
        bad.*field = 1;
        EXPECT_FALSE(bad.clean());
        EXPECT_EQ(bad.render().find("clean"), std::string::npos);
    }
}

TEST(SecureSystem, RunLeavesNothingInFlight)
{
    // Any completed run must pass its own leak check — the property
    // --leak-strict enforces from the CLI.
    const auto r = runScheme(Scheme::Emcc);
    EXPECT_TRUE(r.leaks.clean()) << r.leaks.render();
}

} // namespace
} // namespace emcc

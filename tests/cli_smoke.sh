#!/bin/bash
# CLI contract tests for the emcc_sim binary, run from ctest.
#
#   cli_smoke.sh <path-to-emcc_sim> <case>
#
# Cases:
#   bad_flag           unknown argument reports and exits 2
#   bad_int            garbage integer value reports and exits 2
#   bad_config         out-of-range knob fails validation with exit 2
#   strict_integrity   --fault-strict turns a terminal MAC failure
#                      into exit 3
#   leak_strict_clean  --leak-strict exits 0 on a clean run
#   determinism        identical (workload, seed) runs emit
#                      byte-identical CSV stats
set -u

SIM="${1:?usage: cli_smoke.sh <emcc_sim> <case>}"
CASE="${2:?usage: cli_smoke.sh <emcc_sim> <case>}"

# Small but non-trivial run: big enough that faults land inside the
# measured window, small enough for a quick ctest entry.
SMALL=(--workload BFS --warmup 5000 --measure 20000 --trace 40000)

expect_exit() {
    local want="$1"; shift
    "$@" > /dev/null 2> stderr.txt
    local got=$?
    if [ "$got" != "$want" ]; then
        echo "FAIL: exit $got, wanted $want: $*" >&2
        cat stderr.txt >&2
        return 1
    fi
}

TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT
cd "$TMP"

case "$CASE" in
  bad_flag)
    expect_exit 2 "$SIM" --definitely-not-a-flag
    grep -q "unknown argument" stderr.txt || {
        echo "FAIL: no diagnostic for unknown argument" >&2; exit 1; }
    ;;
  bad_int)
    expect_exit 2 "$SIM" --cores banana
    ;;
  bad_config)
    expect_exit 2 "$SIM" --cores 99
    ;;
  strict_integrity)
    expect_exit 3 "$SIM" "${SMALL[@]}" --scheme emcc \
        --inject-faults "replay:count=1:period=50" --fault-strict
    grep -q "integrity violation" stderr.txt || {
        echo "FAIL: no integrity diagnostic" >&2; exit 1; }
    ;;
  leak_strict_clean)
    expect_exit 0 "$SIM" "${SMALL[@]}" --scheme emcc --leak-strict
    ;;
  determinism)
    for i in 1 2; do
        expect_exit 0 "$SIM" "${SMALL[@]}" --scheme emcc --seed 42 \
            --inject-faults "bus:count=5:period=200" --fault-seed 9 \
            --csv "run_$i.csv" || exit 1
    done
    cmp run_1.csv run_2.csv || {
        echo "FAIL: identical seeded runs produced different stats" >&2
        exit 1; }
    ;;
  *)
    echo "unknown case: $CASE" >&2
    exit 2
    ;;
esac
echo "PASS: $CASE"

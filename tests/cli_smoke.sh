#!/bin/bash
# CLI contract tests for the emcc_sim binary, run from ctest.
#
#   cli_smoke.sh <path-to-emcc_sim> <case>
#
# Cases:
#   bad_flag           unknown argument reports and exits 2
#   bad_int            garbage integer value reports and exits 2
#   bad_config         out-of-range knob fails validation with exit 2
#   strict_integrity   --fault-strict turns a terminal MAC failure
#                      into exit 3
#   leak_strict_clean  --leak-strict exits 0 on a clean run
#   determinism        identical (workload, seed) runs emit
#                      byte-identical CSV stats
#   stats_json         identical seeded runs emit byte-identical
#                      --stats-json dumps with a valid schema
#   golden_stats       the seeded stats dump matches the checked-in
#                      golden file (regen: tools/regen_golden.sh)
#   trace_schema       --trace emits valid Chrome trace JSON (parses,
#                      monotonic timestamps, every B has a matching E)
#   stats_stdout       --stats-json - writes the same JSON to stdout
#                      as to a file
#   series             --stats-interval/--stats-series emit valid,
#                      deterministic emcc-stats-series-v1 JSONL that
#                      matches the checked-in golden
#   overlap_scheme     EMCC hides strictly more crypto latency than
#                      the MC-crypto baseline on the same seeded run
#                      (lat.l2miss.overlap_frac; the paper's headline)
#   sigint_partial     SIGINT mid-run flushes partial stats tagged
#                      "partial": true and exits 5
#   noresmon_parity    --no-resmon stats match the checked-in detached
#                      golden byte-for-byte (observer parity)
#   bottleneck         default run prints the bottleneck report and
#                      emits coherent res.*/cp.* stats (bound_by
#                      fractions sum to 1, what-if projections present)
#   sampled_golden     the seeded --sample stats dump matches the
#                      checked-in golden and validates the sample.*
#                      schema (regen: tools/regen_golden.sh)
#   checkpoint_identity
#                      --checkpoint-roundtrip (save -> scramble ->
#                      restore -> continue at every window boundary)
#                      emits a --stats-json byte-identical to the same
#                      run without it
set -u

SIM="${1:?usage: cli_smoke.sh <emcc_sim> <case>}"
CASE="${2:?usage: cli_smoke.sh <emcc_sim> <case>}"
SCRIPT_DIR="$(cd "$(dirname "${BASH_SOURCE[0]}")" && pwd)"

# Small but non-trivial run: big enough that faults land inside the
# measured window, small enough for a quick ctest entry.
SMALL=(--workload BFS --warmup 5000 --measure 20000 --trace-len 40000)

# The observability cases pin the workload scale exactly (the golden
# file depends on it), so the bench-scale env knobs must not leak in.
unset EMCC_BENCH_FAST EMCC_BENCH_FULL

expect_exit() {
    local want="$1"; shift
    "$@" > /dev/null 2> stderr.txt
    local got=$?
    if [ "$got" != "$want" ]; then
        echo "FAIL: exit $got, wanted $want: $*" >&2
        cat stderr.txt >&2
        return 1
    fi
}

TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT
cd "$TMP"

case "$CASE" in
  bad_flag)
    expect_exit 2 "$SIM" --definitely-not-a-flag
    grep -q "unknown argument" stderr.txt || {
        echo "FAIL: no diagnostic for unknown argument" >&2; exit 1; }
    ;;
  bad_int)
    expect_exit 2 "$SIM" --cores banana
    ;;
  bad_config)
    expect_exit 2 "$SIM" --cores 99
    ;;
  strict_integrity)
    expect_exit 3 "$SIM" "${SMALL[@]}" --scheme emcc \
        --inject-faults "replay:count=1:period=50" --fault-strict
    grep -q "integrity violation" stderr.txt || {
        echo "FAIL: no integrity diagnostic" >&2; exit 1; }
    ;;
  leak_strict_clean)
    expect_exit 0 "$SIM" "${SMALL[@]}" --scheme emcc --leak-strict
    ;;
  determinism)
    for i in 1 2; do
        expect_exit 0 "$SIM" "${SMALL[@]}" --scheme emcc --seed 42 \
            --inject-faults "bus:count=5:period=200" --fault-seed 9 \
            --csv "run_$i.csv" || exit 1
    done
    cmp run_1.csv run_2.csv || {
        echo "FAIL: identical seeded runs produced different stats" >&2
        exit 1; }
    ;;
  stats_json)
    for i in 1 2; do
        expect_exit 0 "$SIM" "${SMALL[@]}" --scheme emcc --seed 42 \
            --stats-json "stats_$i.json" || exit 1
    done
    cmp stats_1.json stats_2.json || {
        echo "FAIL: identical seeded runs produced different stats JSON" >&2
        exit 1; }
    if command -v python3 > /dev/null; then
        python3 "$SCRIPT_DIR/check_stats.py" stats_1.json || exit 1
    else
        echo "note: python3 unavailable, schema check skipped" >&2
    fi
    ;;
  golden_stats)
    expect_exit 0 "$SIM" "${SMALL[@]}" --scheme emcc --seed 42 \
        --stats-json stats.json || exit 1
    GOLDEN="$SCRIPT_DIR/golden/stats_bfs_emcc.json"
    if ! cmp stats.json "$GOLDEN"; then
        echo "FAIL: stats dump diverged from $GOLDEN" >&2
        if command -v python3 > /dev/null; then
            python3 "$SCRIPT_DIR/check_stats.py" stats.json \
                --golden "$GOLDEN" >&2
        fi
        echo "If the change is intentional, regenerate with" >&2
        echo "  tools/regen_golden.sh <path-to-emcc_sim>" >&2
        exit 1
    fi
    ;;
  trace_schema)
    if ! command -v python3 > /dev/null; then
        echo "PASS: trace_schema (skipped: python3 unavailable)"
        exit 0
    fi
    expect_exit 0 "$SIM" "${SMALL[@]}" --scheme emcc --seed 42 \
        --trace trace.json --trace-cats all || exit 1
    python3 "$SCRIPT_DIR/check_trace.py" trace.json || exit 1
    # Category filtering must also hold: a dram-only trace still
    # validates and contains no cache/crypto spans.
    expect_exit 0 "$SIM" "${SMALL[@]}" --scheme emcc --seed 42 \
        --trace dram_only.json --trace-cats dram || exit 1
    python3 "$SCRIPT_DIR/check_trace.py" dram_only.json \
        --only-cats dram || exit 1
    ;;
  stats_stdout)
    expect_exit 0 "$SIM" "${SMALL[@]}" --scheme emcc --seed 42 \
        --stats-json stats_file.json || exit 1
    "$SIM" "${SMALL[@]}" --scheme emcc --seed 42 --stats-json - \
        > report.txt 2> stderr.txt || {
        echo "FAIL: --stats-json - exited $?" >&2; cat stderr.txt >&2
        exit 1; }
    # The JSON is the single line starting with the schema tag.
    grep '"schema":"emcc-stats-v1"' report.txt > stats_stdout.json || {
        echo "FAIL: no stats JSON on stdout" >&2; exit 1; }
    cmp stats_file.json stats_stdout.json || {
        echo "FAIL: stdout stats differ from file stats" >&2; exit 1; }
    ;;
  series)
    for i in 1 2; do
        expect_exit 0 "$SIM" "${SMALL[@]}" --scheme emcc --seed 42 \
            --stats-interval 0.002 --stats-series "series_$i.jsonl" \
            || exit 1
    done
    cmp series_1.jsonl series_2.jsonl || {
        echo "FAIL: identical seeded runs produced different series" >&2
        exit 1; }
    if command -v python3 > /dev/null; then
        python3 "$SCRIPT_DIR/check_series.py" series_1.jsonl \
            --min-lines 5 || exit 1
    fi
    # A coarse-interval run is compared byte-for-byte against the
    # checked-in golden (regen: tools/regen_golden.sh).
    expect_exit 0 "$SIM" "${SMALL[@]}" --scheme emcc --seed 42 \
        --stats-interval 0.02 --stats-series series_coarse.jsonl \
        || exit 1
    GOLDEN="$SCRIPT_DIR/golden/series_bfs_emcc.jsonl"
    cmp series_coarse.jsonl "$GOLDEN" || {
        echo "FAIL: series diverged from $GOLDEN" >&2
        echo "If the change is intentional, regenerate with" >&2
        echo "  tools/regen_golden.sh <path-to-emcc_sim>" >&2
        exit 1; }
    # Interval without a sink (and vice versa) is a usage error.
    expect_exit 2 "$SIM" "${SMALL[@]}" --stats-interval 0.002
    expect_exit 2 "$SIM" "${SMALL[@]}" --stats-series lone.jsonl
    ;;
  overlap_scheme)
    if ! command -v python3 > /dev/null; then
        echo "PASS: overlap_scheme (skipped: python3 unavailable)"
        exit 0
    fi
    expect_exit 0 "$SIM" "${SMALL[@]}" --scheme emcc --seed 42 \
        --stats-json emcc.json || exit 1
    expect_exit 0 "$SIM" "${SMALL[@]}" --scheme baseline --seed 42 \
        --stats-json baseline.json || exit 1
    python3 - <<'EOF' || exit 1
import json
e = json.load(open("emcc.json"))
b = json.load(open("baseline.json"))
ef = e["formulas"]["lat.l2miss.overlap_frac"]
bf = b["formulas"]["lat.l2miss.overlap_frac"]
assert e["histograms"]["lat.l2miss.total"]["count"] > 0, "no misses"
assert ef > bf, f"emcc overlap_frac {ef} !> baseline {bf}"
print(f"overlap_frac: emcc {ef:.4f} > baseline {bf:.4f}")
EOF
    ;;
  sigint_partial)
    # A long run that cannot finish before the signal: interrupt it,
    # expect the dedicated exit code and a partial-tagged stats dump.
    "$SIM" --workload BFS --warmup 5000 --measure 50000000 \
        --trace-len 40000 --stats-json stats.json \
        > /dev/null 2> stderr.txt &
    SIM_PID=$!
    sleep 1
    kill -INT "$SIM_PID"
    wait "$SIM_PID"
    GOT=$?
    if [ "$GOT" != 5 ]; then
        echo "FAIL: exit $GOT after SIGINT, wanted 5" >&2
        cat stderr.txt >&2
        exit 1
    fi
    grep -q '"partial": *true' stats.json || {
        echo "FAIL: stats.json missing \"partial\": true" >&2; exit 1; }
    grep -q "interrupted" stderr.txt || {
        echo "FAIL: no interruption diagnostic on stderr" >&2; exit 1; }
    if command -v python3 > /dev/null; then
        python3 "$SCRIPT_DIR/check_stats.py" stats.json || exit 1
    fi
    ;;
  noresmon_parity)
    # Detaching the monitor must leave the metric set and every value
    # exactly as it was before the resmon subsystem existed; the golden
    # holds the pre-resmon bytes (regen: tools/regen_golden.sh).
    expect_exit 0 "$SIM" "${SMALL[@]}" --scheme emcc --seed 42 \
        --no-resmon --stats-json stats.json || exit 1
    GOLDEN="$SCRIPT_DIR/golden/stats_bfs_emcc_noresmon.json"
    if ! cmp stats.json "$GOLDEN"; then
        echo "FAIL: --no-resmon stats diverged from $GOLDEN" >&2
        if command -v python3 > /dev/null; then
            python3 "$SCRIPT_DIR/check_stats.py" stats.json \
                --golden "$GOLDEN" >&2
        fi
        echo "If the change is intentional, regenerate with" >&2
        echo "  tools/regen_golden.sh <path-to-emcc_sim>" >&2
        exit 1
    fi
    # And no res.*/cp.* keys may leak into a detached dump.
    if grep -q '"res\.\|"cp\.' stats.json; then
        echo "FAIL: res.*/cp.* metrics present under --no-resmon" >&2
        exit 1
    fi
    ;;
  bottleneck)
    "$SIM" "${SMALL[@]}" --scheme emcc --seed 42 \
        --stats-json stats.json > report.txt 2> stderr.txt || {
        echo "FAIL: run exited $?" >&2; cat stderr.txt >&2; exit 1; }
    grep -q "=== bottleneck report ===" report.txt || {
        echo "FAIL: no bottleneck report in run summary" >&2; exit 1; }
    grep -q "resource contention" report.txt || {
        echo "FAIL: no resource contention table" >&2; exit 1; }
    grep -q "critical path" report.txt || {
        echo "FAIL: no critical-path table" >&2; exit 1; }
    if ! command -v python3 > /dev/null; then
        echo "PASS: bottleneck (stats checks skipped: no python3)"
        exit 0
    fi
    python3 "$SCRIPT_DIR/check_stats.py" stats.json || exit 1
    python3 - <<'EOF' || exit 1
import json
d = json.load(open("stats.json"))
f = d["formulas"]
bound = {k: v for k, v in f.items() if k.startswith("cp.bound_by.")}
assert bound, "no cp.bound_by.* fractions"
s = sum(bound.values())
assert abs(s - 1.0) < 1e-9, f"cp.bound_by.* sums to {s}, not 1"
whatif = {k: v for k, v in f.items() if k.startswith("cp.whatif.")}
assert whatif, "no cp.whatif.* projections"
for k, v in whatif.items():
    assert v >= 1.0 - 1e-9, f"{k} = {v} < 1 (speedups only)"
utils = {k: v for k, v in f.items() if k.startswith("res.")
         and k.endswith(".util")}
assert utils, "no res.*.util metrics"
print(f"bottleneck: {len(bound)} bound_by, {len(whatif)} what-ifs, "
      f"{len(utils)} resources")
EOF
    ;;
  sampled_golden)
    expect_exit 0 "$SIM" "${SMALL[@]}" --scheme emcc --seed 42 \
        --sample 4 --sample-ffwd-first 8000 --ffwd 2000 \
        --sample-warm 1000 --sample-measure 3000 \
        --stats-json stats.json || exit 1
    GOLDEN="$SCRIPT_DIR/golden/stats_bfs_emcc_sampled.json"
    if ! cmp stats.json "$GOLDEN"; then
        echo "FAIL: sampled stats diverged from $GOLDEN" >&2
        if command -v python3 > /dev/null; then
            python3 "$SCRIPT_DIR/check_stats.py" stats.json \
                --golden "$GOLDEN" >&2
        fi
        echo "If the change is intentional, regenerate with" >&2
        echo "  tools/regen_golden.sh <path-to-emcc_sim>" >&2
        exit 1
    fi
    # check_stats.py validates the sample.* schema: per-window values,
    # non-negative sd, ordered CI half-widths, mean = window average.
    if command -v python3 > /dev/null; then
        python3 "$SCRIPT_DIR/check_stats.py" stats.json || exit 1
    fi
    ;;
  checkpoint_identity)
    SAMPLED=(--sample 4 --sample-ffwd-first 8000 --ffwd 2000
             --sample-warm 1000 --sample-measure 3000)
    expect_exit 0 "$SIM" "${SMALL[@]}" --scheme emcc --seed 42 \
        "${SAMPLED[@]}" --stats-json plain.json || exit 1
    expect_exit 0 "$SIM" "${SMALL[@]}" --scheme emcc --seed 42 \
        "${SAMPLED[@]}" --checkpoint-roundtrip \
        --stats-json roundtrip.json || exit 1
    if ! cmp plain.json roundtrip.json; then
        echo "FAIL: checkpoint save->restore->continue changed the" \
             "stats dump (determinism broken)" >&2
        if command -v python3 > /dev/null; then
            python3 "$SCRIPT_DIR/check_stats.py" roundtrip.json \
                --golden plain.json >&2
        fi
        exit 1
    fi
    ;;
  *)
    echo "unknown case: $CASE" >&2
    exit 2
    ;;
esac
echo "PASS: $CASE"

/**
 * @file
 * End-to-end functional secure-memory tests: encrypted storage,
 * verified reads, tamper and replay detection, the EMCC MAC^dot trick,
 * and data preservation across split-counter overflow re-encryption.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "common/rng.hh"
#include "secmem/secure_memory.hh"

namespace emcc {
namespace {

void
fill(std::uint8_t (&buf)[64], std::uint64_t seed)
{
    Rng rng(seed);
    for (auto &b : buf)
        b = static_cast<std::uint8_t>(rng.next());
}

class SecureMemoryTest : public ::testing::TestWithParam<CounterDesignKind>
{
  protected:
    SecureMemory
    make(bool mac_over_ciphertext = true)
    {
        return SecureMemory(GetParam(), SecureMemoryKeys::testKeys(),
                            mac_over_ciphertext);
    }
};

TEST_P(SecureMemoryTest, WriteReadRoundTrip)
{
    auto mem = make();
    std::uint8_t data[64], out[64];
    fill(data, 1);
    mem.write(Addr{0x4000}, data);
    const auto r = mem.read(Addr{0x4000}, out);
    EXPECT_TRUE(r.present);
    EXPECT_TRUE(r.verified);
    EXPECT_EQ(0, std::memcmp(data, out, 64));
}

TEST_P(SecureMemoryTest, UnwrittenBlockAbsent)
{
    auto mem = make();
    std::uint8_t out[64];
    const auto r = mem.read(Addr{0x9000}, out);
    EXPECT_FALSE(r.present);
    EXPECT_FALSE(r.verified);
}

TEST_P(SecureMemoryTest, CiphertextDiffersFromPlaintext)
{
    auto mem = make();
    std::uint8_t data[64];
    fill(data, 2);
    mem.write(Addr{0x4000}, data);
    const std::uint8_t *ct = mem.ciphertext(Addr{0x4000});
    ASSERT_NE(ct, nullptr);
    EXPECT_NE(0, std::memcmp(data, ct, 64));
}

TEST_P(SecureMemoryTest, RewritesUseFreshOtp)
{
    // Writing the same plaintext twice must give different ciphertext
    // (the counter advanced) — the OTP-reuse vulnerability the counter
    // exists to prevent.
    auto mem = make();
    std::uint8_t data[64];
    fill(data, 3);
    mem.write(Addr{0x4000}, data);
    std::uint8_t first[64];
    std::memcpy(first, mem.ciphertext(Addr{0x4000}), 64);
    mem.write(Addr{0x4000}, data);
    EXPECT_NE(0, std::memcmp(first, mem.ciphertext(Addr{0x4000}), 64));
    // And it still reads back fine.
    std::uint8_t out[64];
    EXPECT_TRUE(mem.read(Addr{0x4000}, out).verified);
    EXPECT_EQ(0, std::memcmp(data, out, 64));
}

TEST_P(SecureMemoryTest, TamperedCiphertextDetected)
{
    auto mem = make();
    std::uint8_t data[64], out[64];
    fill(data, 4);
    mem.write(Addr{0x4000}, data);
    EXPECT_TRUE(mem.tamperCiphertext(Addr{0x4000}, 13, 0x80));
    const auto r = mem.read(Addr{0x4000}, out);
    EXPECT_TRUE(r.present);
    EXPECT_FALSE(r.verified);
}

TEST_P(SecureMemoryTest, TamperedMacDetected)
{
    auto mem = make();
    std::uint8_t data[64], out[64];
    fill(data, 5);
    mem.write(Addr{0x4000}, data);
    EXPECT_TRUE(mem.tamperMac(Addr{0x4000}, 0x1));
    EXPECT_FALSE(mem.read(Addr{0x4000}, out).verified);
}

TEST_P(SecureMemoryTest, TamperOnUnwrittenBlockReportsFailure)
{
    // Fault campaigns aim at arbitrary addresses; targeting a block that
    // was never written must report failure, not kill the process.
    auto mem = make();
    EXPECT_FALSE(mem.tamperCiphertext(Addr{0x7000}, 0, 0x01));
    EXPECT_FALSE(mem.tamperMac(Addr{0x7000}, 0x1));
    std::uint8_t data[64];
    fill(data, 8);
    mem.write(Addr{0x7000}, data);
    EXPECT_TRUE(mem.tamperCiphertext(Addr{0x7000}, 0, 0x01));
}

TEST_P(SecureMemoryTest, ReplayAttackDetected)
{
    auto mem = make();
    std::uint8_t v1[64], v2[64], out[64];
    fill(v1, 6);
    fill(v2, 7);
    mem.write(Addr{0x4000}, v1);
    ASSERT_TRUE(mem.snapshot(Addr{0x4000}));
    mem.write(Addr{0x4000}, v2);   // counter advances
    ASSERT_TRUE(mem.replay(Addr{0x4000}));   // attacker restores old bytes
    const auto r = mem.read(Addr{0x4000}, out);
    EXPECT_TRUE(r.present);
    EXPECT_FALSE(r.verified) << "replay must not verify";
}

TEST_P(SecureMemoryTest, ManyBlocksIndependent)
{
    auto mem = make();
    std::uint8_t data[64], out[64];
    for (Addr a{}; a < Addr{64 * kBlockBytes}; a += kBlockBytes) {
        fill(data, 100 + a.value());
        mem.write(a, data);
    }
    for (Addr a{}; a < Addr{64 * kBlockBytes}; a += kBlockBytes) {
        fill(data, 100 + a.value());
        ASSERT_TRUE(mem.read(a, out).verified) << a;
        ASSERT_EQ(0, std::memcmp(data, out, 64)) << a;
    }
}

INSTANTIATE_TEST_SUITE_P(AllDesigns, SecureMemoryTest,
                         ::testing::Values(CounterDesignKind::Monolithic,
                                           CounterDesignKind::Sc64,
                                           CounterDesignKind::Morphable),
                         [](const auto &pinfo) {
                             switch (pinfo.param) {
                               case CounterDesignKind::Monolithic:
                                 return std::string("Monolithic");
                               case CounterDesignKind::Sc64:
                                 return std::string("Sc64");
                               default:
                                 return std::string("Morphable");
                             }
                         });

TEST(SecureMemoryEmcc, MacXorDotMatchesAesPart)
{
    // The EMCC verification split: MC sends MAC ^ dot(ciphertext); L2
    // checks it against the AES part it computes locally.
    SecureMemory mem(CounterDesignKind::Morphable,
                     SecureMemoryKeys::testKeys(),
                     /*mac_over_ciphertext=*/true);
    std::uint8_t data[64];
    fill(data, 8);
    mem.write(Addr{0x8000}, data);
    const auto xord = mem.macXorDot(Addr{0x8000});
    ASSERT_TRUE(xord.has_value());
    EXPECT_EQ(*xord, mem.macAesPart(Addr{0x8000}));
}

TEST(SecureMemoryEmcc, MacXorDotCatchesTampering)
{
    SecureMemory mem(CounterDesignKind::Morphable,
                     SecureMemoryKeys::testKeys(), true);
    std::uint8_t data[64];
    fill(data, 9);
    mem.write(Addr{0x8000}, data);
    mem.tamperCiphertext(Addr{0x8000}, 5, 0x40);
    const auto xord = mem.macXorDot(Addr{0x8000});
    ASSERT_TRUE(xord.has_value());
    EXPECT_NE(*xord, mem.macAesPart(Addr{0x8000}));
}

TEST(SecureMemoryEmcc, PlaintextMacModeHasNoXorDot)
{
    SecureMemory mem(CounterDesignKind::Morphable,
                     SecureMemoryKeys::testKeys(),
                     /*mac_over_ciphertext=*/false);
    std::uint8_t data[64];
    fill(data, 10);
    mem.write(Addr{0x8000}, data);
    EXPECT_FALSE(mem.macXorDot(Addr{0x8000}).has_value());
    // But normal verification still works.
    std::uint8_t out[64];
    EXPECT_TRUE(mem.read(Addr{0x8000}, out).verified);
}

TEST(SecureMemoryOverflow, Sc64OverflowPreservesData)
{
    SecureMemory mem(CounterDesignKind::Sc64,
                     SecureMemoryKeys::testKeys());
    // Populate the whole 4 KiB region, then hammer one block through an
    // overflow; every block must still decrypt and verify.
    std::uint8_t data[64], out[64];
    for (Addr a{}; a < Addr{4096}; a += kBlockBytes) {
        fill(data, 200 + a.value());
        mem.write(a, data);
    }
    for (int i = 0; i < 200; ++i) {
        fill(data, 999);
        mem.write(Addr{0x0}, data);
    }
    EXPECT_GT(mem.design().overflows(), 0u);
    for (Addr a{kBlockBytes}; a < Addr{4096}; a += kBlockBytes) {
        fill(data, 200 + a.value());
        ASSERT_TRUE(mem.read(a, out).verified) << "block " << a;
        ASSERT_EQ(0, std::memcmp(data, out, 64)) << "block " << a;
    }
}

TEST(SecureMemoryOverflow, MorphableOverflowPreservesData)
{
    SecureMemory mem(CounterDesignKind::Morphable,
                     SecureMemoryKeys::testKeys());
    std::uint8_t data[64], out[64];
    for (Addr a{}; a < Addr{8192}; a += kBlockBytes) {
        fill(data, 300 + a.value());
        mem.write(a, data);
    }
    // Hammer one block until the format overflows.
    int writes = 0;
    while (mem.design().overflows() == 0 && writes < 100000) {
        fill(data, 777);
        mem.write(Addr{0x40}, data);
        ++writes;
    }
    ASSERT_GT(mem.design().overflows(), 0u);
    for (Addr a{2 * kBlockBytes}; a < Addr{8192}; a += kBlockBytes) {
        fill(data, 300 + a.value());
        ASSERT_TRUE(mem.read(a, out).verified) << "block " << a;
        ASSERT_EQ(0, std::memcmp(data, out, 64)) << "block " << a;
    }
}

} // namespace
} // namespace emcc

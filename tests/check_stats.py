#!/usr/bin/env python3
"""Validate an emcc_sim --stats-json dump.

Usage:
    check_stats.py STATS.json [--golden GOLDEN.json]

Checks the schema contract:
  - top level is an object with exactly the keys
    schema/counters/gauges/formulas/histograms
  - schema string is "emcc-stats-v1"
  - counter values are non-negative integers
  - metric names use the [a-z0-9._] grammar and are sorted
  - histogram entries carry the snapshot fields and consistent totals

With --golden, additionally diffs the dump against a golden file and
reports added/removed keys and changed values (the ctest wrapper does a
byte compare first; this produces the human-readable diff on failure).
"""

import argparse
import json
import re
import sys

NAME_RE = re.compile(r"^[a-z0-9_]+(\.[a-z0-9_]+)*$")
TOP_KEYS = {"schema", "counters", "gauges", "formulas", "histograms"}
HIST_KEYS = {"count", "mean", "min", "max", "percentiles", "underflow",
             "overflow", "lo", "hi", "num_bins", "bins"}
PCTL_KEYS = {"p50", "p95", "p99"}


def fail(msg):
    print(f"check_stats: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check_names(section, mapping):
    names = list(mapping.keys())
    for n in names:
        if not NAME_RE.match(n):
            fail(f"{section}: bad metric name {n!r}")
    if names != sorted(names):
        fail(f"{section}: names are not sorted")


def check_schema(doc):
    if not isinstance(doc, dict):
        fail("top level is not an object")
    # "partial" is optional: emitted (as true) only when a run was
    # interrupted by SIGINT/SIGTERM and flushed mid-flight.
    keys = set(doc.keys()) - {"partial"}
    if keys != TOP_KEYS:
        fail(f"top-level keys {sorted(doc.keys())} != {sorted(TOP_KEYS)}")
    if "partial" in doc and doc["partial"] is not True:
        fail(f"partial = {doc['partial']!r} (must be true when present)")
    if doc["schema"] != "emcc-stats-v1":
        fail(f"unexpected schema tag {doc['schema']!r}")
    for section in ("counters", "gauges", "formulas", "histograms"):
        if not isinstance(doc[section], dict):
            fail(f"{section} is not an object")
        check_names(section, doc[section])
    for name, v in doc["counters"].items():
        if not isinstance(v, int) or v < 0:
            fail(f"counter {name} = {v!r} is not a non-negative integer")
    for section in ("gauges", "formulas"):
        for name, v in doc[section].items():
            if not isinstance(v, (int, float)):
                fail(f"{section[:-1]} {name} = {v!r} is not a number")
    for name, h in doc["histograms"].items():
        if set(h.keys()) != HIST_KEYS:
            fail(f"histogram {name} keys {sorted(h.keys())}")
        binned = sum(h["bins"].values())
        if binned + h["underflow"] + h["overflow"] != h["count"]:
            fail(f"histogram {name}: bins+under+over != count")
        for idx in h["bins"]:
            if not idx.isdigit() or int(idx) >= h["num_bins"]:
                fail(f"histogram {name}: bad bin index {idx!r}")
        p = h["percentiles"]
        if set(p.keys()) != PCTL_KEYS:
            fail(f"histogram {name} percentile keys {sorted(p.keys())}")
        for k, v in p.items():
            if not isinstance(v, (int, float)):
                fail(f"histogram {name}: {k} = {v!r} is not a number")
        if h["count"] > 0 and not p["p50"] <= p["p95"] <= p["p99"]:
            fail(f"histogram {name}: percentiles not monotone: {p}")
    check_resmon(doc)
    check_sampled(doc)


SAMPLE_ESTIMATES = ("sample.ipc", "sample.l2_miss_ns",
                    "sample.ctr_hit_rate", "sample.duration_ns")


def check_sampled(doc):
    """Invariants for the sample.* namespace emitted by --sample runs:
    per-window values, a (k-1)-variance spread estimate, and
    normal-approximation CI half-widths that widen with confidence.
    A run without --sample must emit no sample.* keys at all."""
    formulas = doc["formulas"]
    windows = doc["counters"].get("sample.windows")
    if windows is None:
        leaked = [k for k in formulas if k.startswith("sample.")]
        if leaked:
            fail(f"sample.* formulas without sample.windows: {leaked}")
        return
    if windows < 1:
        fail(f"sample.windows = {windows} (must be >= 1)")
    for base in SAMPLE_ESTIMATES:
        for suffix in ("mean", "sd", "ci50", "ci95", "ci99"):
            if f"{base}.{suffix}" not in formulas:
                fail(f"missing {base}.{suffix}")
        wins = [v for k, v in formulas.items()
                if k.startswith(f"{base}.win")]
        if len(wins) != windows:
            fail(f"{base}: {len(wins)} .winN values for "
                 f"{windows} windows")
        mean = formulas[f"{base}.mean"]
        if wins and abs(mean - sum(wins) / len(wins)) > \
                1e-9 * max(1.0, abs(mean)):
            fail(f"{base}.mean = {mean} is not the window average")
        sd = formulas[f"{base}.sd"]
        if sd < 0.0:
            fail(f"{base}.sd = {sd} is negative")
        ci = [formulas[f"{base}.ci{c}"] for c in (50, 95, 99)]
        if not 0.0 <= ci[0] <= ci[1] <= ci[2]:
            fail(f"{base}: CI half-widths not ordered: {ci}")
    stray = [k for k in formulas
             if k.startswith("sample.") and
             not any(k.startswith(b + ".") for b in SAMPLE_ESTIMATES)]
    if stray:
        fail(f"unknown sample.* keys: {stray}")


def check_resmon(doc):
    """Invariants for the res.*/cp.* observability namespaces (when
    present; a --no-resmon dump legitimately has neither)."""
    formulas = doc["formulas"]
    for name, v in formulas.items():
        if name.startswith("res.") and name.endswith((".util", ".sat_frac")):
            if not 0.0 <= v <= 1.0:
                fail(f"{name} = {v} outside [0, 1]")
    bound = {k: v for k, v in formulas.items()
             if k.startswith("cp.bound_by.")}
    records = doc["counters"].get("cp.records", 0)
    if bound and records > 0:
        total = sum(bound.values())
        if abs(total - 1.0) > 1e-9:
            fail(f"cp.bound_by.* fractions sum to {total}, not 1")
        for k, v in bound.items():
            if not 0.0 <= v <= 1.0:
                fail(f"{k} = {v} outside [0, 1]")


def flatten(doc):
    out = {}
    for section in ("counters", "gauges", "formulas"):
        for name, v in doc[section].items():
            out[f"{section}.{name}"] = v
    for name, h in doc["histograms"].items():
        out[f"histograms.{name}"] = json.dumps(h, sort_keys=True)
    return out


def diff_golden(doc, golden):
    a, b = flatten(golden), flatten(doc)
    added = sorted(set(b) - set(a))
    removed = sorted(set(a) - set(b))
    changed = sorted(k for k in set(a) & set(b) if a[k] != b[k])
    for k in removed:
        print(f"  removed: {k} (golden {a[k]})")
    for k in added:
        print(f"  added:   {k} = {b[k]}")
    for k in changed:
        print(f"  changed: {k}: golden {a[k]} -> {b[k]}")
    return not (added or removed or changed)


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("stats")
    ap.add_argument("--golden")
    args = ap.parse_args()

    with open(args.stats) as f:
        doc = json.load(f)
    check_schema(doc)

    if args.golden:
        with open(args.golden) as f:
            golden = json.load(f)
        check_schema(golden)
        if not diff_golden(doc, golden):
            fail("stats diverged from golden")

    total = sum(len(doc[s]) for s in
                ("counters", "gauges", "formulas", "histograms"))
    print(f"check_stats: OK ({total} metrics)")


if __name__ == "__main__":
    main()

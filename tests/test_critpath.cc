/**
 * @file
 * Tests for the per-miss critical-path analyzer: binding-category
 * identification and what-if replay math on hand-built records,
 * Table-I analytical scenarios, metric registration, and the
 * end-to-end validation the projection semantics promise — the
 * AES -> 0 projection matches an actual re-simulated run with zero
 * AES latency within 10%, on two workloads.
 */

#include <gtest/gtest.h>

#include "obs/critpath.hh"
#include "obs/ledger.hh"
#include "obs/metrics.hh"
#include "secmem/timeline.hh"
#include "system/experiment.hh"
#include "system/secure_system.hh"

namespace emcc {
namespace {

using obs::CpCategory;
using obs::CpWhatIf;
using obs::CritPathAnalyzer;
using obs::MissRecord;
using obs::MissSegment;

/** A dram-bound miss: 40 ns DRAM path, 10 ns NoC, 2 ns LLC, a 14 ns
 *  AES lane of which 8 ns were hidden, 2 ns residual; 50 ns total. */
MissRecord
dramBoundRecord()
{
    MissRecord rec;
    rec.start = Tick{};
    rec.add(MissSegment::McQueue, 10.0);
    rec.add(MissSegment::DramRowMiss, 20.0);
    rec.add(MissSegment::NocReq, 6.5);
    rec.add(MissSegment::NocResp, 3.5);
    rec.add(MissSegment::Llc, 2.0);
    rec.add(MissSegment::Aes, 14.0);
    rec.crypto_begin = Tick{};
    rec.crypto_end = nsToTicks(14.0);
    rec.hide_until = nsToTicks(8.0);
    return rec;
}

TEST(CritPath, IdentifiesBindingCategoryAndMeans)
{
    CritPathAnalyzer cp;
    cp.observe(dramBoundRecord(), nsToTicks(50.0));

    EXPECT_EQ(cp.records(), 1u);
    EXPECT_DOUBLE_EQ(cp.boundByFrac(CpCategory::Dram), 1.0);
    EXPECT_NEAR(cp.categoryMeanNs(CpCategory::Dram), 30.0, 1e-9);
    EXPECT_NEAR(cp.categoryMeanNs(CpCategory::Noc), 10.0, 1e-9);
    EXPECT_NEAR(cp.categoryMeanNs(CpCategory::Llc), 2.0, 1e-9);
    // Lane 14, hidden 8: 6 ns exposed, all of it AES work.
    EXPECT_NEAR(cp.categoryMeanNs(CpCategory::Crypto), 6.0, 1e-9);
    EXPECT_NEAR(cp.categoryMeanNs(CpCategory::Counter), 0.0, 1e-9);
    // Residual: 50 - (30 + 10 + 2 + 6) = 2 ns.
    EXPECT_NEAR(cp.categoryMeanNs(CpCategory::Other), 2.0, 1e-9);
}

TEST(CritPath, CounterExposureBindsWhenFetchDominates)
{
    // A 40 ns lane with only 10 ns of AES: the exposed tail is mostly
    // counter-fetch time, and it exceeds every serial segment.
    MissRecord rec;
    rec.start = Tick{};
    rec.add(MissSegment::McQueue, 5.0);
    rec.add(MissSegment::NocReq, 3.0);
    rec.add(MissSegment::Llc, 2.0);
    rec.add(MissSegment::Aes, 10.0);
    rec.crypto_begin = Tick{};
    rec.crypto_end = nsToTicks(40.0);
    rec.hide_until = nsToTicks(5.0);

    CritPathAnalyzer cp;
    cp.observe(rec, nsToTicks(50.0));
    EXPECT_DOUBLE_EQ(cp.boundByFrac(CpCategory::Counter), 1.0);
    // Exposed 35 ns: 10 AES + 25 counter.
    EXPECT_NEAR(cp.categoryMeanNs(CpCategory::Crypto), 10.0, 1e-9);
    EXPECT_NEAR(cp.categoryMeanNs(CpCategory::Counter), 25.0, 1e-9);
}

TEST(CritPath, BoundByFractionsSumToOne)
{
    CritPathAnalyzer cp;
    cp.observe(dramBoundRecord(), nsToTicks(50.0));
    MissRecord noc_bound;
    noc_bound.start = Tick{};
    noc_bound.add(MissSegment::NocReq, 20.0);
    noc_bound.add(MissSegment::Llc, 2.0);
    cp.observe(noc_bound, nsToTicks(25.0));

    double sum = 0.0;
    for (unsigned i = 0; i < obs::kNumCpCategories; ++i)
        sum += cp.boundByFrac(static_cast<CpCategory>(i));
    EXPECT_NEAR(sum, 1.0, 1e-12);
    EXPECT_DOUBLE_EQ(cp.boundByFrac(CpCategory::Dram), 0.5);
    EXPECT_DOUBLE_EQ(cp.boundByFrac(CpCategory::Noc), 0.5);
}

TEST(CritPath, ProjectSpeedupReplaysTheRecordedDag)
{
    CritPathAnalyzer cp;
    cp.observe(dramBoundRecord(), nsToTicks(50.0));

    // data = 30+10+2+2 = 44, exposed = 6, before = 50.
    // AES -> 0: the lane vanishes, hidden credit unused: after = 44.
    EXPECT_NEAR(cp.whatIf(CpWhatIf::AesZero), 50.0 / 44.0, 1e-4);
    // Counter -> 0 buys nothing (the lane was pure AES).
    EXPECT_NEAR(cp.whatIf(CpWhatIf::CounterZero), 1.0, 1e-4);
    // DRAM x0.5: data' = 29, hidden' = 8*29/44, exposed' = 14-hidden'.
    {
        const double data2 = 29.0;
        const double hidden2 = 8.0 * data2 / 44.0;
        const double after = data2 + (14.0 - hidden2);
        EXPECT_NEAR(cp.whatIf(CpWhatIf::DramHalf), 50.0 / after, 1e-4);
    }
    // NoC -> 0: data' = 34, hidden' = 8*34/44, exposed' = 14-hidden'.
    {
        const double data2 = 34.0;
        const double hidden2 = 8.0 * data2 / 44.0;
        const double after = data2 + (14.0 - hidden2);
        EXPECT_NEAR(cp.whatIf(CpWhatIf::NocZero), 50.0 / after, 1e-4);
    }
    // Speedups only: every canonical axis scales a component down.
    for (unsigned i = 0; i < obs::kNumCpWhatIfs; ++i)
        EXPECT_GE(cp.whatIf(static_cast<CpWhatIf>(i)), 1.0 - 1e-9);
}

TEST(CritPath, NoRecordsProjectsUnity)
{
    CritPathAnalyzer cp;
    EXPECT_DOUBLE_EQ(cp.whatIf(CpWhatIf::AesZero), 1.0);
    EXPECT_DOUBLE_EQ(cp.boundByFrac(CpCategory::Dram), 0.0);
}

TEST(CritPath, TableOneScenarioFullyHiddenCrypto)
{
    // The analytical EMCC counter-hit scenario: the AES lane hides
    // entirely under the data block's DRAM + NoC flight, so zeroing
    // AES projects exactly 1x while halving DRAM pays the full serial
    // saving.
    const TimelineParams p;
    MissRecord rec;
    rec.start = Tick{};
    rec.add(MissSegment::NocReq, p.req_l2_to_llc_ns);
    rec.add(MissSegment::NocLlcMc, p.noc_llc_mc_ns);
    rec.add(MissSegment::NocResp, p.resp_mc_to_l2_ns);
    rec.add(MissSegment::DramRowMiss, p.dram_row_miss_ns);
    rec.add(MissSegment::Aes, p.aes_ns);
    rec.crypto_begin = Tick{};
    rec.crypto_end = nsToTicks(p.aes_ns);
    rec.hide_until = nsToTicks(p.aes_ns);   // fully hidden

    const double noc =
        p.req_l2_to_llc_ns + p.noc_llc_mc_ns + p.resp_mc_to_l2_ns;
    const double total = noc + p.dram_row_miss_ns;
    CritPathAnalyzer cp;
    cp.observe(rec, nsToTicks(total));

    // The binding category is whichever flight the constants make
    // larger (Table I's long MC->L2 response hop beats one row miss).
    const auto binding = noc > p.dram_row_miss_ns ? CpCategory::Noc
                                                  : CpCategory::Dram;
    EXPECT_DOUBLE_EQ(cp.boundByFrac(binding), 1.0);
    EXPECT_NEAR(cp.whatIf(CpWhatIf::AesZero), 1.0, 1e-6);
    // DRAM x0.5: the data path shrinks, which re-exposes the tail of
    // the previously hidden lane — the replay must account for it.
    const double data2 = total - p.dram_row_miss_ns / 2.0;
    const double hidden2 = p.aes_ns * data2 / total;
    const double exposed2 = p.aes_ns > hidden2 ? p.aes_ns - hidden2 : 0.0;
    EXPECT_NEAR(cp.whatIf(CpWhatIf::DramHalf), total / (data2 + exposed2),
                1e-3);
}

TEST(CritPath, ResetStatsDropsEverything)
{
    CritPathAnalyzer cp;
    cp.observe(dramBoundRecord(), nsToTicks(50.0));
    ASSERT_EQ(cp.records(), 1u);
    cp.resetStats();
    EXPECT_EQ(cp.records(), 0u);
    EXPECT_DOUBLE_EQ(cp.boundByFrac(CpCategory::Dram), 0.0);
    EXPECT_DOUBLE_EQ(cp.whatIf(CpWhatIf::DramHalf), 1.0);
}

TEST(CritPath, RegisterMetricsExposesTheNamespace)
{
    CritPathAnalyzer cp;
    obs::MetricsRegistry reg;
    cp.registerMetrics(reg, "cp");
    const auto snap = reg.snapshot();

    EXPECT_EQ(snap.counters.count("cp.records"), 1u);
    for (unsigned i = 0; i < obs::kNumCpCategories; ++i) {
        const std::string name =
            obs::cpCategoryName(static_cast<CpCategory>(i));
        EXPECT_EQ(snap.formulas.count("cp.bound_by." + name), 1u) << name;
        EXPECT_EQ(snap.formulas.count("cp.mean_ns." + name), 1u) << name;
    }
    for (unsigned i = 0; i < obs::kNumCpWhatIfs; ++i) {
        const std::string name =
            obs::cpWhatIfName(static_cast<CpWhatIf>(i));
        EXPECT_EQ(snap.formulas.count("cp.whatif." + name), 1u) << name;
    }
}

TEST(CritPath, RenderTableShowsBreakdownAndProjections)
{
    CritPathAnalyzer cp;
    cp.observe(dramBoundRecord(), nsToTicks(50.0));
    const std::string table = cp.renderTable();
    EXPECT_NE(table.find("critical path"), std::string::npos);
    EXPECT_NE(table.find("dram"), std::string::npos);
    EXPECT_NE(table.find("what-if projections"), std::string::npos);
    EXPECT_NE(table.find("aes_zero"), std::string::npos);
}

// ---------------------------------------------------------------- e2e

SystemConfig
tinyConfig()
{
    SystemConfig cfg;
    cfg.cores = 2;
    cfg.l1_bytes = 16_KiB;
    cfg.l2_bytes = 64_KiB;
    cfg.llc_bytes = 256_KiB;
    cfg.mc_ctr_cache_bytes = 8_KiB;
    cfg.l2_ctr_cap_bytes = 4_KiB;
    cfg.data_region_bytes = 1_GiB;
    cfg.scheme = Scheme::Emcc;
    return cfg;
}

const WorkloadSet &
tinyWorkload(const std::string &name)
{
    WorkloadParams p;
    p.cores = 2;
    p.trace_len = 60'000;
    p.graph_vertices = 1 << 15;
    p.graph_degree = 8;
    p.footprint_scale = 1.0 / 32.0;
    return experiments::cachedWorkload(name, p);
}

struct E2ERun
{
    double mean_miss_ns;
    double projected_aes_zero;
    Count records;
};

E2ERun
runOnce(const std::string &workload, Tick aes_latency)
{
    SystemConfig cfg = tinyConfig();
    cfg.aes_latency = aes_latency;
    Simulator sim;
    obs::LatencyLedger led;
    CritPathAnalyzer cp;
    sim.setLedger(&led);
    sim.setCritPath(&cp);
    SecureSystem sys(sim, cfg, &tinyWorkload(workload));
    sys.run(50'000, 100'000);
    return {led.totalHist().mean(), cp.whatIf(CpWhatIf::AesZero),
            led.records()};
}

/**
 * The contract stated in critpath.hh: replaying the recorded DAGs with
 * AES zeroed projects the per-miss latency speedup an actual zero-AES
 * re-simulation realizes, within 10%.
 */
class AesZeroValidation : public ::testing::TestWithParam<std::string>
{};

TEST_P(AesZeroValidation, ProjectionWithinTenPercentOfResimulation)
{
    const E2ERun normal = runOnce(GetParam(), nsToTicks(14.0));
    const E2ERun zeroed = runOnce(GetParam(), Tick{});
    ASSERT_GT(normal.records, 100u);
    ASSERT_GT(zeroed.records, 100u);
    ASSERT_GT(zeroed.mean_miss_ns, 0.0);

    const double actual = normal.mean_miss_ns / zeroed.mean_miss_ns;
    EXPECT_GE(normal.projected_aes_zero, 1.0);
    EXPECT_NEAR(normal.projected_aes_zero, actual, 0.10 * actual)
        << "projected " << normal.projected_aes_zero << " vs actual "
        << actual << " on " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(TwoWorkloads, AesZeroValidation,
                         ::testing::Values("BFS", "pageRank"),
                         [](const auto &pinfo) { return pinfo.param; });

TEST(CritPathE2E, BoundByFractionsSumToOneOnRealRun)
{
    Simulator sim;
    obs::LatencyLedger led;
    CritPathAnalyzer cp;
    sim.setLedger(&led);
    sim.setCritPath(&cp);
    SecureSystem sys(sim, tinyConfig(), &tinyWorkload("BFS"));
    sys.run(50'000, 100'000);
    ASSERT_GT(cp.records(), 100u);
    double sum = 0.0;
    for (unsigned i = 0; i < obs::kNumCpCategories; ++i)
        sum += cp.boundByFrac(static_cast<CpCategory>(i));
    EXPECT_NEAR(sum, 1.0, 1e-9);
}

} // namespace
} // namespace emcc

/**
 * @file
 * Sampled-vs-full-detail validation (the ISSUE 10 acceptance gate).
 *
 * Runs two kernels at a 10x footprint scale — ten times today's default
 * synthetic footprints — in full event-level detail and in sampled mode
 * (one long functional fast-forward past the warm-up transient, then K
 * detailed measurement windows with short inter-window fast-forwards),
 * and asserts:
 *
 *   - the sampled run finishes >= 10x faster in host time,
 *   - the sampled L2-miss-latency mean is within +-5% of full detail,
 *   - the sampled counter-hit rate is within +-5% of full detail,
 *   - the sampled IPC estimate is within +-5% of full detail.
 *
 * Kernel and scenario choice is deliberate: sampling with a truncated
 * fast-forward is only unbiased once the run's slow state accumulation
 * (cache fill, metadata-tree population, DRAM page mapping) has reached
 * its plateau, so the kernels here are ones whose latency-vs-depth
 * curve flattens inside the fast-forward budget (measured in
 * EXPERIMENTS.md); the full-detail reference discards the same
 * transient through its detailed warm-up phase. Drift-dominated
 * kernels (write-heavy morphable-counter mixes) need coverage-matched
 * fast-forwarding instead — that trade-off is documented in DESIGN.md.
 *
 * Everything here is deterministic except host wall-clock; the 10x
 * host-time assertion carries ~60% headroom on an idle machine (both
 * runs execute in this one process, so machine-wide slowdowns largely
 * cancel in the ratio).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "obs/profile.hh"
#include "system/experiment.hh"

namespace emcc {
namespace {

using namespace experiments;

struct Scenario
{
    const char *kernel;
    double footprint_scale;
    Count warm_full;        ///< detailed warm-up of the reference run
    Count meas_full;        ///< measured instructions of the reference
    Count ffwd_first;       ///< refs/core fast-forwarded before window 1
    Count ffwd_win;         ///< refs/core between later windows
    unsigned windows;
    Count wwarm;            ///< detailed warm-up slice per window
    Count wmeas;            ///< measured instructions per window
};

struct Comparison
{
    double speedup = 0.0;
    double lat_err_pct = 0.0;
    double ctr_err_pct = 0.0;
    double ipc_err_pct = 0.0;
    double full_lat = 0.0;
    double samp_lat = 0.0;
    double full_ctr = 0.0;
    double samp_ctr = 0.0;
    double full_host_s = 0.0;
    double samp_host_s = 0.0;
};

double
formula(const RunResults &r, const std::string &key)
{
    const auto it = r.metrics.formulas.find(key);
    return it == r.metrics.formulas.end() ? -1.0 : it->second;
}

double
counter(const RunResults &r, const std::string &key)
{
    const auto it = r.metrics.counters.find(key);
    return it == r.metrics.counters.end()
               ? 0.0
               : static_cast<double>(it->second);
}

/** Full-detail counter-hit rate over all three counter-cache levels —
 *  the same definition sample.ctr_hit_rate uses per window. */
double
ctrHitRate(const RunResults &r)
{
    const double hits = counter(r, "sys.mc_ctr_hits") +
                        counter(r, "sys.llc_ctr_hits") +
                        counter(r, "sys.emcc_l2_ctr_hits");
    const double total = hits + counter(r, "sys.llc_ctr_misses");
    return total > 0.0 ? hits / total : 0.0;
}

Comparison
runScenario(const Scenario &sc)
{
    WorkloadParams wp;
    wp.cores = 4;
    wp.trace_len = 600'000;
    wp.footprint_scale = sc.footprint_scale;
    const WorkloadSet &set = cachedWorkload(sc.kernel, wp);

    const SystemConfig cfg = paperConfig(Scheme::Emcc);

    BenchScale scale;
    scale.workload = wp;
    scale.warmup_instructions = sc.warm_full;
    scale.measure_instructions = sc.meas_full;

    obs::HostTimer full_timer;
    const RunResults full = runTiming(cfg, set, scale, RunOptions{});
    const double full_s = full_timer.seconds();

    RunOptions sampled_opts;
    sampled_opts.sample.windows = sc.windows;
    sampled_opts.sample.ffwd_first = sc.ffwd_first;
    sampled_opts.sample.ffwd_refs = sc.ffwd_win;
    sampled_opts.sample.warm = sc.wwarm;
    sampled_opts.sample.measure = sc.wmeas;
    obs::HostTimer samp_timer;
    const RunResults samp = runTiming(cfg, set, scale, sampled_opts);
    const double samp_s = samp_timer.seconds();

    Comparison c;
    c.full_host_s = full_s;
    c.samp_host_s = samp_s;
    c.speedup = samp_s > 0.0 ? full_s / samp_s : 0.0;
    c.full_lat = formula(full, "sys.l2_miss_latency_avg_ns");
    c.samp_lat = formula(samp, "sample.l2_miss_ns.mean");
    c.lat_err_pct = (c.samp_lat - c.full_lat) / c.full_lat * 100.0;
    c.full_ctr = ctrHitRate(full);
    c.samp_ctr = formula(samp, "sample.ctr_hit_rate.mean");
    c.ctr_err_pct = (c.samp_ctr - c.full_ctr) / c.full_ctr * 100.0;
    const double samp_ipc = formula(samp, "sample.ipc.mean");
    c.ipc_err_pct = (samp_ipc - full.total_ipc) / full.total_ipc * 100.0;
    return c;
}

void
report(const char *kernel, const Comparison &c)
{
    std::printf("| %-10s | %7.1fx | %8.3fs | %8.3fs | %+6.1f%% | "
                "%+6.1f%% | %+6.1f%% |\n",
                kernel, c.speedup, c.full_host_s, c.samp_host_s,
                c.lat_err_pct, c.ctr_err_pct, c.ipc_err_pct);
    // Optional machine-readable copy for the CI artifact.
    if (const char *path = std::getenv("EMCC_SAMPLED_REPORT")) {
        if (std::FILE *f = std::fopen(path, "a")) {
            std::fprintf(f,
                         "{\"kernel\":\"%s\",\"speedup\":%.2f,"
                         "\"full_host_s\":%.3f,\"sampled_host_s\":%.3f,"
                         "\"full_lat_ns\":%.2f,\"sampled_lat_ns\":%.2f,"
                         "\"lat_err_pct\":%.2f,"
                         "\"full_ctr_rate\":%.4f,\"sampled_ctr_rate\":%.4f,"
                         "\"ctr_err_pct\":%.2f,\"ipc_err_pct\":%.2f}\n",
                         kernel, c.speedup, c.full_host_s, c.samp_host_s,
                         c.full_lat, c.samp_lat, c.lat_err_pct, c.full_ctr,
                         c.samp_ctr, c.ctr_err_pct, c.ipc_err_pct);
            std::fclose(f);
        }
    }
}

void
checkBounds(const Comparison &c)
{
    // Host-time assertion of the acceptance criterion: >= 10x faster.
    EXPECT_GE(c.speedup, 10.0);
    // Metric fidelity: +-5% on the paper's two headline memory metrics
    // plus the IPC proxy.
    EXPECT_LE(std::fabs(c.lat_err_pct), 5.0);
    EXPECT_LE(std::fabs(c.ctr_err_pct), 5.0);
    EXPECT_LE(std::fabs(c.ipc_err_pct), 5.0);
    // Sanity: the metrics actually existed.
    EXPECT_GT(c.full_lat, 0.0);
    EXPECT_GT(c.samp_lat, 0.0);
    EXPECT_GT(c.full_ctr, 0.0);
}

TEST(SampledValidation, TableHeader)
{
    std::printf("| kernel     | speedup  | full     | sampled  | lat err "
                "| ctr err | ipc err |\n");
}

/** omnetpp at 10x: 640 MiB footprint (64 MiB at default scale). The
 *  4M-instruction reference costs ~7 host-seconds; sampling replays
 *  ~20%% of its reference coverage and lands within ~3%% on every
 *  metric at ~16x host speedup (idle machine). */
TEST(SampledValidation, Omnetpp10x)
{
    const Scenario sc{"omnetpp", 10.0, 2'000'000, 2'000'000,
                      140'000,   8'000, 4,        2'000,     6'000};
    const Comparison c = runScenario(sc);
    report(sc.kernel, c);
    checkBounds(c);
}

/** ferret at 10x: 480 MiB footprint (48 MiB at default scale). Lower
 *  refs-per-instruction, so the profitable scenario is a longer
 *  reference span (10M instructions); measured ~16x at +-1.5%%. */
TEST(SampledValidation, Ferret10x)
{
    const Scenario sc{"ferret", 10.0, 2'000'000, 8'000'000,
                      130'000,  8'000, 4,        2'000,     6'000};
    const Comparison c = runScenario(sc);
    report(sc.kernel, c);
    checkBounds(c);
}

} // namespace
} // namespace emcc

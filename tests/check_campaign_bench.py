#!/usr/bin/env python3
"""Gate the campaign-engine throughput results.

Usage: check_campaign_bench.py BENCH_campaign.json

The speedup column is serial-host-seconds over parallel-host-seconds,
measured in one process on one machine, so the gate is host-relative:

  * with >= 8 worker threads the speedup must reach the 6x acceptance
    floor (0.75x per thread on the reference 8-thread host);
  * with 2..7 threads it must reach 0.7x per thread;
  * a 1-thread host has nothing to parallelize — the row only proves
    the engine completed the campaign cleanly.

Exit status: 0 clean, 1 regression/malformed input, 2 usage error.
"""

import json
import sys


def fail(msg):
    print(f"check_campaign_bench: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def main():
    if len(sys.argv) != 2:
        print(__doc__, file=sys.stderr)
        sys.exit(2)

    with open(sys.argv[1], encoding="utf-8") as f:
        bench = json.load(f)
    if bench.get("bench") != "BENCH_campaign":
        fail(f"unexpected bench tag {bench.get('bench')!r}")
    cols = bench.get("columns", [])
    for need in ("jobs", "runs_per_s", "speedup"):
        if need not in cols:
            fail(f"missing column {need!r} in {cols}")
    rows = bench.get("rows", [])
    if not rows:
        fail("no rows")

    ji, ri, si = cols.index("jobs"), cols.index("runs_per_s"), \
        cols.index("speedup")
    best = max(rows, key=lambda r: int(r[ji]))
    jobs, rate, speedup = int(best[ji]), float(best[ri]), float(best[si])
    if rate <= 0.0:
        fail(f"non-positive throughput {rate} at jobs={jobs}")

    if jobs >= 8:
        floor = 6.0
    elif jobs >= 2:
        floor = 0.7 * jobs
    else:
        floor = 0.0
    if speedup < floor:
        fail(f"speedup {speedup:.2f} at jobs={jobs} below floor "
             f"{floor:.2f}")
    print(f"check_campaign_bench: OK — jobs={jobs} "
          f"runs_per_s={rate:.2f} speedup={speedup:.2f} "
          f"(floor {floor:.2f})")


if __name__ == "__main__":
    main()

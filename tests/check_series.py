#!/usr/bin/env python3
"""Validate an emcc_sim --stats-series JSONL dump.

Usage:
    check_series.py SERIES.jsonl [--min-lines N]

Checks the emcc-stats-series-v1 contract:
  - every line is a standalone JSON object with exactly the keys
    schema/seq/t_ns/counters/gauges/formulas/histograms
  - schema string is "emcc-stats-series-v1"
  - seq is dense from 0 and t_ns strictly increases
  - all lines expose the same metric names (the registry is fixed for
    a run, only values change)
  - cumulative counters never decrease between snapshots
"""

import argparse
import json
import sys

TOP_KEYS = {"schema", "seq", "t_ns", "counters", "gauges", "formulas",
            "histograms"}


def fail(msg):
    print(f"check_series: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def names_of(doc):
    return {section: frozenset(doc[section])
            for section in ("counters", "gauges", "formulas",
                            "histograms")}


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("series")
    ap.add_argument("--min-lines", type=int, default=1)
    args = ap.parse_args()

    with open(args.series) as f:
        lines = [ln for ln in f.read().splitlines() if ln]
    if len(lines) < args.min_lines:
        fail(f"only {len(lines)} snapshots, wanted >= {args.min_lines}")

    prev_t = None
    prev_counters = None
    prev_names = None
    for i, line in enumerate(lines):
        try:
            doc = json.loads(line)
        except json.JSONDecodeError as e:
            fail(f"line {i}: not valid JSON: {e}")
        if set(doc.keys()) != TOP_KEYS:
            fail(f"line {i}: keys {sorted(doc.keys())}")
        if doc["schema"] != "emcc-stats-series-v1":
            fail(f"line {i}: schema {doc['schema']!r}")
        if doc["seq"] != i:
            fail(f"line {i}: seq {doc['seq']} is not dense")
        if prev_t is not None and doc["t_ns"] <= prev_t:
            fail(f"line {i}: t_ns {doc['t_ns']} <= previous {prev_t}")
        prev_t = doc["t_ns"]
        names = names_of(doc)
        if prev_names is not None and names != prev_names:
            fail(f"line {i}: metric names changed between snapshots")
        prev_names = names
        counters = doc["counters"]
        if prev_counters is not None:
            for k, v in counters.items():
                if v < prev_counters[k]:
                    fail(f"line {i}: counter {k} decreased "
                         f"({prev_counters[k]} -> {v})")
        prev_counters = counters

    print(f"check_series: OK ({len(lines)} snapshots, "
          f"{sum(len(v) for v in names_of(json.loads(lines[-1])).values())}"
          f" metrics each)")


if __name__ == "__main__":
    main()

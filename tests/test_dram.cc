/**
 * @file
 * Tests for the DDR4 model: timing composition (row hit/miss/conflict),
 * FR-FCFS-Capped scheduling, read priority, queue capacity, refresh,
 * channel mapping, and queueing-delay accounting.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "dram/dram.hh"
#include "sim/finish_pool.hh"
#include "sim/simulator.hh"

namespace emcc {
namespace {

/** Shared continuation pool for the test requests (on_complete is a
 *  pooled FinishCb handle, not a std::function). */
FinishPool &
testPool()
{
    static FinishPool pool;
    return pool;
}

DramConfig
quietConfig()
{
    DramConfig cfg;
    // Push refresh far out so timing tests see pure access latency.
    cfg.t_refi = nsToTicks(10'000'000.0);
    return cfg;
}

struct Completion
{
    Tick when = kTickInvalid;
    bool done() const { return when != kTickInvalid; }
};

DramRequest
readReq(Addr a, Completion *c, MemClass cls = MemClass::Data)
{
    DramRequest r;
    r.addr = a;
    r.is_write = false;
    r.mclass = cls;
    r.on_complete = testPool().make([c](Tick t) { c->when = t; });
    return r;
}

/** Find an address whose row conflicts with address 0's bank. */
Addr
conflictingAddr(const DramConfig &cfg)
{
    DramAddressMapper mapper(cfg);
    const auto c0 = mapper.map(Addr{0x0});
    for (Addr a{cfg.row_bytes}; a < Addr{4096 * cfg.row_bytes};
         a += cfg.row_bytes) {
        const auto c = mapper.map(a);
        if (c.channel == c0.channel && c.rank == c0.rank &&
            c.bank == c0.bank && c.row != c0.row) {
            return a;
        }
    }
    return Addr{};
}

TEST(DramConfig, BurstAndPeakBandwidth)
{
    DramConfig cfg;
    // 64B / 8B bus at 3.2 GT/s = 8 beats at 0.3125 ns = 2.5 ns.
    EXPECT_EQ(cfg.burstTicks(), nsToTicks(2.5));
    EXPECT_DOUBLE_EQ(cfg.peakBytesPerSec(), 3.2e9 * 8);
    cfg.channels = 8;
    EXPECT_DOUBLE_EQ(cfg.peakBytesPerSec(), 8 * 3.2e9 * 8);
}

TEST(DramMapper, PaperChannelBits)
{
    DramConfig cfg;
    cfg.channels = 8;
    DramAddressMapper m(cfg);
    // Bits 8..10 select the channel (paper §VI-D).
    EXPECT_EQ(m.map(Addr{0x000}).channel, 0u);
    EXPECT_EQ(m.map(Addr{0x100}).channel, 1u);
    EXPECT_EQ(m.map(Addr{0x700}).channel, 7u);
    EXPECT_EQ(m.map(Addr{0x800}).channel, 0u);
}

TEST(DramMapper, CoordsInRange)
{
    DramConfig cfg;
    DramAddressMapper m(cfg);
    for (Addr a{}; a < Addr{4096 * kBlockBytes}; a += 257 * kBlockBytes) {
        const auto c = m.map(a);
        EXPECT_LT(c.rank, cfg.ranks);
        EXPECT_LT(c.bank, cfg.banks_per_rank);
        EXPECT_EQ(c.channel, 0u);
    }
}

TEST(DramChannel, RowMissThenRowHitLatency)
{
    Simulator sim;
    DramMemory mem(sim, "m", quietConfig());
    Completion first, second;
    mem.enqueue(readReq(Addr{0x0}, &first));
    sim.run();
    // Closed bank: ACT + CAS + burst.
    EXPECT_EQ(first.when, nsToTicks(13.75 + 13.75 + 2.5));

    const Tick t1 = sim.now();
    mem.enqueue(readReq(Addr{0x40}, &second));   // same row
    sim.run();
    EXPECT_EQ(second.when - t1, nsToTicks(13.75 + 2.5));
    EXPECT_EQ(mem.aggregateStats().row_hits, 1u);
    EXPECT_EQ(mem.aggregateStats().row_misses, 1u);
}

TEST(DramChannel, RowConflictPaysPrecharge)
{
    auto cfg = quietConfig();
    cfg.row_timeout = nsToTicks(1'000'000.0);   // rows stay open
    Simulator sim;
    DramMemory mem(sim, "m", cfg);
    const Addr conflict = conflictingAddr(cfg);
    ASSERT_NE(conflict, Addr{});

    Completion first, second;
    mem.enqueue(readReq(Addr{0x0}, &first));
    sim.run();
    const Tick t1 = sim.now();
    mem.enqueue(readReq(conflict, &second));
    sim.run();
    EXPECT_EQ(second.when - t1, nsToTicks(13.75 * 3 + 2.5));
    EXPECT_EQ(mem.aggregateStats().row_conflicts, 1u);
}

TEST(DramChannel, RowTimeoutClosesRow)
{
    Simulator sim;
    DramMemory mem(sim, "m", quietConfig());   // 500 ns timeout default
    Completion first, second;
    mem.enqueue(readReq(Addr{0x0}, &first));
    sim.run();
    // Wait past the 500 ns timeout, then access the same row: the row
    // timed out, so it pays ACT again (row miss, not hit).
    sim.post(sim.now() + nsToTicks(600.0), [] {});
    sim.run();
    const Tick t1 = sim.now();
    mem.enqueue(readReq(Addr{0x40}, &second));
    sim.run();
    EXPECT_EQ(second.when - t1, nsToTicks(13.75 + 13.75 + 2.5));
    EXPECT_EQ(mem.aggregateStats().row_misses, 2u);
}

TEST(DramChannel, ReadsPrioritizedOverWrites)
{
    Simulator sim;
    DramMemory mem(sim, "m", quietConfig());
    Completion read_done;
    Tick write_done = kTickInvalid;
    DramRequest w;
    w.addr = Addr{0x10000};
    w.is_write = true;
    w.on_complete = testPool().make([&](Tick t) { write_done = t; });
    mem.enqueue(w);
    mem.enqueue(readReq(Addr{0x0}, &read_done));
    sim.run();
    ASSERT_TRUE(read_done.done());
    ASSERT_NE(write_done, kTickInvalid);
    EXPECT_LT(read_done.when, write_done);
}

TEST(DramChannel, FrFcfsPrefersRowHits)
{
    auto cfg = quietConfig();
    cfg.row_timeout = nsToTicks(1'000'000.0);
    Simulator sim;
    DramMemory mem(sim, "m", cfg);
    const Addr conflict = conflictingAddr(cfg);
    ASSERT_NE(conflict, Addr{});

    Completion a1, b, a2;
    mem.enqueue(readReq(Addr{0x0}, &a1));   // opens row 0
    sim.run();
    mem.enqueue(readReq(conflict, &b));
    mem.enqueue(readReq(Addr{0x80}, &a2));   // row hit on the open row
    sim.run();
    EXPECT_LT(a2.when, b.when);        // hit served before older conflict
}

TEST(DramChannel, FrFcfsCapBoundsStreak)
{
    auto cfg = quietConfig();
    cfg.frfcfs_cap = 2;
    cfg.row_timeout = nsToTicks(1'000'000.0);
    Simulator sim;
    DramMemory mem(sim, "m", cfg);
    const Addr conflict = conflictingAddr(cfg);
    ASSERT_NE(conflict, Addr{});

    Completion open_row;
    mem.enqueue(readReq(Addr{0x0}, &open_row));
    sim.run();

    // Old conflicting request + a stream of row hits: with cap=2 the
    // hits cannot starve the conflicting request to the end.
    Completion b;
    std::vector<std::unique_ptr<Completion>> hits;
    mem.enqueue(readReq(conflict, &b));
    for (int i = 1; i <= 4; ++i) {
        hits.push_back(std::make_unique<Completion>());
        mem.enqueue(readReq(Addr{0x40ull * i}, hits.back().get()));
    }
    sim.run();
    EXPECT_LT(b.when, hits.back()->when);
}

TEST(DramChannel, QueueCapacityRejects)
{
    auto cfg = quietConfig();
    cfg.queue_entries = 2;
    Simulator sim;
    DramMemory mem(sim, "m", cfg);
    Completion c1, c2, c3;
    EXPECT_TRUE(mem.enqueue(readReq(Addr{0x0}, &c1)));
    EXPECT_TRUE(mem.enqueue(readReq(Addr{0x40}, &c2)));
    EXPECT_FALSE(mem.enqueue(readReq(Addr{0x80}, &c3)));
    EXPECT_EQ(mem.aggregateStats().retries, 1u);
}

TEST(DramChannel, RefreshAccountedLazily)
{
    DramConfig cfg;   // default tREFI = 7.8 us
    Simulator sim;
    DramMemory mem(sim, "m", cfg);
    Completion c1, c2;
    mem.enqueue(readReq(Addr{0x0}, &c1));
    sim.run();
    // Jump past several refresh periods, then access again: the lazy
    // model accounts the elapsed windows at the next command.
    sim.post(sim.now() + 5 * cfg.t_refi, [] {});
    sim.run();
    mem.enqueue(readReq(Addr{0x40}, &c2));
    sim.run();
    EXPECT_GE(mem.aggregateStats().refreshes, 4u);
}

TEST(DramChannel, RefreshClosesRow)
{
    DramConfig cfg;
    cfg.row_timeout = nsToTicks(1e9);   // timeouts off: isolate refresh
    Simulator sim;
    DramMemory mem(sim, "m", cfg);
    Completion c1, c2;
    mem.enqueue(readReq(Addr{0x0}, &c1));
    sim.run();
    sim.post(sim.now() + 3 * cfg.t_refi, [] {});
    sim.run();
    mem.enqueue(readReq(Addr{0x40}, &c2));   // same row, but refresh closed it
    sim.run();
    EXPECT_EQ(mem.aggregateStats().row_hits, 0u);
    EXPECT_EQ(mem.aggregateStats().row_misses, 2u);
}

TEST(DramChannel, QueueingDelayAccounted)
{
    Simulator sim;
    DramMemory mem(sim, "m", quietConfig());
    Completion c1, c2;
    mem.enqueue(readReq(Addr{0x0}, &c1, MemClass::Data));
    mem.enqueue(readReq(Addr{0x40}, &c2, MemClass::Counter));
    sim.run();
    const auto s = mem.aggregateStats();
    EXPECT_EQ(s.reads[static_cast<int>(MemClass::Data)], 1u);
    EXPECT_EQ(s.reads[static_cast<int>(MemClass::Counter)], 1u);
    // The second request waited behind the first (same bank/bus).
    EXPECT_GT(s.read_qdelay[static_cast<int>(MemClass::Counter)], 0.0);
}

TEST(DramChannel, BusBusyTracksBursts)
{
    Simulator sim;
    DramMemory mem(sim, "m", quietConfig());
    Completion c1, c2;
    mem.enqueue(readReq(Addr{0x0}, &c1));
    mem.enqueue(readReq(Addr{0x40}, &c2));
    sim.run();
    EXPECT_EQ(mem.aggregateStats().bus_busy, 2 * nsToTicks(2.5));
}

TEST(DramMemory, EightChannelsParallelism)
{
    auto cfg = quietConfig();
    cfg.channels = 8;
    Simulator sim;
    DramMemory mem(sim, "m", cfg);
    EXPECT_EQ(mem.numChannels(), 8u);
    std::vector<std::unique_ptr<Completion>> cs;
    for (unsigned ch = 0; ch < 8; ++ch) {
        cs.push_back(std::make_unique<Completion>());
        mem.enqueue(readReq(Addr{0x100ull * ch}, cs.back().get()));
    }
    sim.run();
    // All eight served in parallel at single-access latency.
    for (auto &c : cs)
        EXPECT_EQ(c->when, nsToTicks(13.75 + 13.75 + 2.5));
}

TEST(DramMemory, ResetStatsZeroes)
{
    Simulator sim;
    DramMemory mem(sim, "m", quietConfig());
    Completion c1;
    mem.enqueue(readReq(Addr{0x0}, &c1));
    sim.run();
    EXPECT_GT(mem.aggregateStats().readsAll(), 0u);
    mem.resetStats();
    EXPECT_EQ(mem.aggregateStats().readsAll(), 0u);
}

} // namespace
} // namespace emcc

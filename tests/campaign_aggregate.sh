#!/bin/bash
# Campaign aggregate regression gate, run from ctest:
#
#   campaign_aggregate.sh <path-to-emcc_campaign>
#
# Runs the small checked-in grid (campaign_aggregate_spec.json) and
# diffs its canonical aggregate against the checked-in golden via
# --check-aggregate: any drift in the simulated metrics of any
# (workload, scheme, seed) cell fails the gate. Then verifies the gate
# actually bites by checking a tampered golden is rejected with exit 1.
#
# Regenerate after an intentional timing/metric change:
#   build/tools/emcc_campaign --spec tests/campaign_aggregate_spec.json \
#       --aggregate tests/golden/campaign_aggregate.jsonl --no-fsync
set -u

CAMPAIGN="${1:?usage: campaign_aggregate.sh <emcc_campaign>}"
SCRIPT_DIR="$(cd "$(dirname "${BASH_SOURCE[0]}")" && pwd)"
SPEC="$SCRIPT_DIR/campaign_aggregate_spec.json"
GOLDEN="$SCRIPT_DIR/golden/campaign_aggregate.jsonl"

unset EMCC_BENCH_FAST EMCC_BENCH_FULL

TMP="$(mktemp -d "${TMPDIR:-/tmp}/emcc_campaign_agg.XXXXXX")"
trap 'rm -rf "$TMP"' EXIT
cd "$TMP"

"$CAMPAIGN" --spec "$SPEC" --jobs 2 --no-fsync \
    --check-aggregate "$GOLDEN" > stdout.txt 2> stderr.txt
GOT=$?
if [ "$GOT" != 0 ]; then
    echo "FAIL: --check-aggregate exited $GOT against the golden" >&2
    cat stderr.txt >&2
    echo "If the change is intentional, regenerate with" >&2
    echo "  emcc_campaign --spec $SPEC --aggregate $GOLDEN --no-fsync" >&2
    exit 1
fi
grep -q "aggregate matches" stderr.txt || {
    echo "FAIL: no aggregate-match confirmation on stderr" >&2; exit 1; }

# The gate must bite: a tampered golden is drift, exit 1 with a
# pointer at the first diverging line.
sed 's/"outcome":"ok"/"outcome":"failed"/' "$GOLDEN" > tampered.jsonl
"$CAMPAIGN" --spec "$SPEC" --jobs 2 --no-fsync \
    --check-aggregate tampered.jsonl > /dev/null 2> stderr2.txt
GOT=$?
if [ "$GOT" != 1 ]; then
    echo "FAIL: tampered golden accepted (exit $GOT, wanted 1)" >&2
    cat stderr2.txt >&2
    exit 1
fi
grep -q "aggregate diverges" stderr2.txt || {
    echo "FAIL: no divergence diagnostic" >&2; cat stderr2.txt >&2
    exit 1; }

echo "PASS: campaign_aggregate"

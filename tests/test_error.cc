/**
 * @file
 * Tests for the structured error hierarchy (src/common/error.hh) and
 * the fatal()/fatal_if() throwing path.
 *
 * The contract under test: every user-provokable failure is a SimError
 * subclass, so a driver can catch the base class and report cleanly,
 * or catch a specific subclass to map it to a distinct exit code (the
 * emcc_sim CLI maps ConfigError to 2 and IntegrityViolation to 3).
 */

#include <gtest/gtest.h>

#include <stdexcept>
#include <type_traits>

#include "common/error.hh"
#include "common/log.hh"

namespace {

using namespace emcc;

// The hierarchy itself is part of the API: drivers rely on a single
// catch (const SimError &) handling every recoverable failure.
static_assert(std::is_base_of_v<std::runtime_error, SimError>);
static_assert(std::is_base_of_v<SimError, ConfigError>);
static_assert(std::is_base_of_v<SimError, FatalError>);
static_assert(std::is_base_of_v<SimError, IntegrityViolation>);
static_assert(std::is_base_of_v<SimError, WatchdogTimeout>);

TEST(Error, MessagePassesThroughWhat)
{
    const ConfigError e("bad knob value");
    EXPECT_STREQ(e.what(), "bad knob value");
}

TEST(Error, SubclassesCatchableAsSimError)
{
    bool caught = false;
    try {
        throw ConfigError("nope");
    } catch (const SimError &e) {
        caught = true;
        EXPECT_STREQ(e.what(), "nope");
    }
    EXPECT_TRUE(caught);
}

TEST(Error, ConfigErrorDistinguishableFromOtherSimErrors)
{
    // The CLI depends on ordering catch clauses by specificity.
    const auto classify = [](const SimError &e) {
        if (dynamic_cast<const ConfigError *>(&e) != nullptr)
            return 2;
        if (dynamic_cast<const IntegrityViolation *>(&e) != nullptr)
            return 3;
        return 1;
    };
    EXPECT_EQ(classify(ConfigError("x")), 2);
    EXPECT_EQ(classify(IntegrityViolation("x", Addr{0}, 0)), 3);
    EXPECT_EQ(classify(SimError("x")), 1);
}

TEST(Error, FatalErrorCarriesOrigin)
{
    const FatalError e("broke", "module.cc", 42);
    EXPECT_STREQ(e.file(), "module.cc");
    EXPECT_EQ(e.line(), 42);
    // The rendered message embeds the origin for log files.
    EXPECT_NE(std::string(e.what()).find("module.cc:42"),
              std::string::npos);
}

TEST(Error, IntegrityViolationCarriesFaultContext)
{
    const IntegrityViolation e("MAC mismatch", Addr{0x1000}, 3);
    EXPECT_EQ(e.addr(), Addr{0x1000});
    EXPECT_EQ(e.attempts(), 3u);
    EXPECT_STREQ(e.what(), "MAC mismatch");
}

TEST(Error, WatchdogTimeoutCarriesDiagnostics)
{
    const WatchdogTimeout e("wedged", "mshr dump: 3 outstanding");
    EXPECT_EQ(e.diagnostics(), "mshr dump: 3 outstanding");
}

TEST(Error, FatalMacroThrowsFatalError)
{
    // fatal() is the throwing path (recoverable by a driver); panic()
    // aborts and is deliberately not exercised here.
    const auto boom = [] { fatal("count=%d too big", 7); };
    EXPECT_THROW(boom(), FatalError);
    try {
        boom();
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("count=7 too big"),
                  std::string::npos);
        EXPECT_NE(std::string(e.file()).find("test_error.cc"),
                  std::string::npos);
    }
}

TEST(Error, FatalIfOnlyFiresWhenConditionHolds)
{
    EXPECT_NO_THROW(fatal_if(false, "never"));
    EXPECT_THROW(fatal_if(true, "always"), FatalError);
}

} // namespace

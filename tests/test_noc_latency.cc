/**
 * @file
 * Tests for the NoC latency model: calibration to the paper's measured
 * means (7.5 ns one-way, 23 ns LLC hit) and the Fig-3 distribution
 * shape (16-29 ns spread).
 */

#include <gtest/gtest.h>

#include "common/error.hh"
#include "common/rng.hh"
#include "noc/latency_model.hh"

namespace emcc {
namespace {

TEST(NocLatency, OneWayFormula)
{
    MeshTopology mesh;
    NocLatencyModel noc(mesh, NocConfig{4.0, 1.0, 4.0, 4.0});
    EXPECT_DOUBLE_EQ(noc.oneWayNs(0), 4.0);
    EXPECT_DOUBLE_EQ(noc.oneWayNs(5), 9.0);
}

TEST(NocLatency, CalibrationHitsTarget)
{
    MeshTopology mesh;
    NocLatencyModel noc(mesh);
    noc.calibrateMeanOneWay(7.5);
    EXPECT_NEAR(noc.meanOneWayNs(), 7.5, 1e-9);
    // The paper's mean LLC hit latency: 4 (L2 miss) + 15 (two-way NoC)
    // + 4 (slice SRAM) = 23 ns.
    EXPECT_NEAR(noc.meanLlcHitNs(), 23.0, 1e-9);
}

TEST(NocLatency, Fig3DistributionShape)
{
    MeshTopology mesh;
    NocLatencyModel noc(mesh);
    noc.calibrateMeanOneWay(7.5);
    const Histogram h = noc.llcHitDistribution();
    EXPECT_NEAR(h.mean(), 23.0, 0.1);
    // Spread like Fig 3: minimum around 16 ns; the farthest corner
    // pairs give a slightly longer tail than the paper's 29 ns bin.
    EXPECT_GE(h.min(), 14.0);
    EXPECT_LE(h.min(), 17.5);
    EXPECT_GE(h.max(), 26.0);
    EXPECT_LE(h.max(), 35.0);
}

TEST(NocLatency, DirectLlcLatencyExcludesL2)
{
    MeshTopology mesh;
    NocLatencyModel noc(mesh);
    noc.calibrateMeanOneWay(7.5);
    // Direct LLC latency = LLC hit - 4ns L2 component (paper footnote 1).
    EXPECT_NEAR(noc.directLlcLatencyNs(0, 5) + 4.0,
                noc.llcHitLatencyNs(0, 5), 1e-9);
}

TEST(NocLatency, SamplesComeFromPairPopulation)
{
    MeshTopology mesh;
    NocLatencyModel noc(mesh);
    noc.calibrateMeanOneWay(7.5);
    Rng rng(1);
    double sum = 0.0;
    const int n = 50000;
    for (int i = 0; i < n; ++i) {
        const double s = noc.sampleTwoWayNs(rng);
        ASSERT_GE(s, 2.0 * 4.0);   // at least 2x base
        sum += s;
    }
    EXPECT_NEAR(sum / n, noc.meanTwoWayNs(), 0.15);
}

TEST(NocLatency, DeltaIsZeroMean)
{
    MeshTopology mesh;
    NocLatencyModel noc(mesh);
    noc.calibrateMeanOneWay(7.5);
    Rng rng(2);
    double sum = 0.0;
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        sum += noc.sampleDeltaNs(rng);
    EXPECT_NEAR(sum / n, 0.0, 0.15);
}

TEST(NocLatency, CalibrationRejectsImpossibleTarget)
{
    MeshTopology mesh;
    NocLatencyModel noc(mesh, NocConfig{4.0, 1.0, 4.0, 4.0});
    EXPECT_THROW(noc.calibrateMeanOneWay(3.0), FatalError);
}

} // namespace
} // namespace emcc

/**
 * @file
 * Tests for the per-miss latency attribution ledger: record/stamp
 * arithmetic and overlap credit in isolation, metric registration, and
 * two end-to-end properties — the measured steady-state breakdown
 * matches the analytical secmem timelines (Table-I constants) within a
 * bounded tolerance, and EMCC hides strictly more crypto work than the
 * MC-crypto baseline on the same seeded workload.
 */

#include <gtest/gtest.h>

#include "obs/ledger.hh"
#include "obs/metrics.hh"
#include "secmem/timeline.hh"
#include "system/secure_system.hh"

namespace emcc {
namespace {

using obs::LatencyLedger;
using obs::MissRecord;
using obs::MissSegment;

TEST(MissRecord, StampAccumulatesAndIgnoresEmptyIntervals)
{
    MissRecord rec;
    rec.stamp(MissSegment::McQueue, nsToTicks(10.0), nsToTicks(25.0));
    rec.stamp(MissSegment::McQueue, nsToTicks(40.0), nsToTicks(45.0));
    // e <= b must not stamp (retries can produce empty intervals).
    rec.stamp(MissSegment::NocReq, nsToTicks(50.0), nsToTicks(50.0));
    rec.stamp(MissSegment::NocReq, nsToTicks(60.0), nsToTicks(55.0));

    const auto mcq = static_cast<unsigned>(MissSegment::McQueue);
    const auto req = static_cast<unsigned>(MissSegment::NocReq);
    EXPECT_NEAR(rec.seg_ns[mcq], 20.0, 1e-9);
    EXPECT_EQ(rec.seg_ns[req], 0.0);
    EXPECT_TRUE(rec.stamped & (1u << mcq));
    EXPECT_FALSE(rec.stamped & (1u << req));
}

TEST(LatencyLedger, FinishBooksTotalSerialAndResidual)
{
    LatencyLedger led;
    MissRecord *rec = led.begin(Tick{});
    rec->stamp(MissSegment::NocReq, Tick{}, nsToTicks(6.5));
    rec->stamp(MissSegment::Llc, nsToTicks(6.5), nsToTicks(8.5));
    rec->stamp(MissSegment::DramRowMiss, nsToTicks(8.5), nsToTicks(38.5));
    led.finish(rec, nsToTicks(100.0));

    EXPECT_EQ(led.records(), 1u);
    EXPECT_NEAR(led.totalHist().mean(), 100.0, 1e-9);
    // Residual: 100 - (6.5 + 2 + 30) = 61.5 ns of unattributed time.
    EXPECT_NEAR(led.segmentHist(MissSegment::Other).mean(), 61.5, 1e-9);
    // Shares of the serial segments plus the residual cover the total.
    const double covered = led.share(MissSegment::NocReq) +
                           led.share(MissSegment::Llc) +
                           led.share(MissSegment::DramRowMiss) +
                           led.share(MissSegment::Other);
    EXPECT_NEAR(covered, 1.0, 1e-9);
}

TEST(LatencyLedger, OverlapCreditSplitsHiddenAndExposedCrypto)
{
    LatencyLedger led;
    MissRecord *rec = led.begin(Tick{});
    // Crypto lane busy [10, 50) ns; the data block itself arrived at
    // t=30, so 20 ns were hidden and 20 ns exposed on the critical
    // path (booked as CtrWait).
    rec->crypto_begin = nsToTicks(10.0);
    rec->crypto_end = nsToTicks(50.0);
    rec->hide_until = nsToTicks(30.0);
    led.finish(rec, nsToTicks(50.0));

    EXPECT_EQ(led.cryptoRecords(), 1u);
    EXPECT_NEAR(led.cryptoNs(), 40.0, 1e-9);
    EXPECT_NEAR(led.hiddenNs(), 20.0, 1e-9);
    EXPECT_NEAR(led.overlapFrac(), 0.5, 1e-9);
    EXPECT_NEAR(led.segmentHist(MissSegment::CtrWait).mean(), 20.0, 1e-9);
}

TEST(LatencyLedger, FullyHiddenCryptoExposesNothing)
{
    LatencyLedger led;
    MissRecord *rec = led.begin(Tick{});
    rec->crypto_begin = nsToTicks(5.0);
    rec->crypto_end = nsToTicks(19.0);
    rec->hide_until = nsToTicks(40.0);  // data arrived after crypto done
    led.finish(rec, nsToTicks(40.0));

    EXPECT_NEAR(led.overlapFrac(), 1.0, 1e-9);
    EXPECT_EQ(led.segmentHist(MissSegment::CtrWait).count(), 0u);
}

TEST(LatencyLedger, CoalescedWaitersCredit)
{
    LatencyLedger led;
    MissRecord *a = led.begin(Tick{});
    a->waiters = 3;  // primary miss + two merged requesters
    led.finish(a, nsToTicks(10.0));
    MissRecord *b = led.begin(Tick{});
    b->waiters = 1;
    led.finish(b, nsToTicks(10.0));

    EXPECT_EQ(led.records(), 2u);
    EXPECT_EQ(led.coalesced(), 2u);
}

TEST(LatencyLedger, RecordsAreRecycled)
{
    LatencyLedger led;
    MissRecord *a = led.begin(nsToTicks(1.0));
    led.finish(a, nsToTicks(2.0));
    MissRecord *b = led.begin(nsToTicks(3.0));
    // Pooled: the recycled record must come back clean.
    EXPECT_EQ(a, b);
    EXPECT_EQ(b->stamped, 0u);
    EXPECT_EQ(b->waiters, 0u);
    EXPECT_EQ(b->crypto_begin, kTickInvalid);
    led.finish(b, nsToTicks(4.0));
}

TEST(LatencyLedger, ResetStatsClearsAggregates)
{
    LatencyLedger led;
    MissRecord *rec = led.begin(Tick{});
    rec->stamp(MissSegment::NocReq, Tick{}, nsToTicks(6.5));
    led.finish(rec, nsToTicks(50.0));
    ASSERT_EQ(led.records(), 1u);

    led.resetStats();
    EXPECT_EQ(led.records(), 0u);
    EXPECT_EQ(led.totalHist().count(), 0u);
    EXPECT_EQ(led.segmentHist(MissSegment::NocReq).count(), 0u);
    EXPECT_EQ(led.overlapFrac(), 0.0);
}

TEST(LatencyLedger, RegisterMetricsExposesSegmentsAndOverlap)
{
    LatencyLedger led;
    obs::MetricsRegistry reg;
    led.registerMetrics(reg, "lat.l2miss");
    const auto snap = reg.snapshot();

    EXPECT_EQ(snap.counters.count("lat.l2miss.records"), 1u);
    EXPECT_EQ(snap.counters.count("lat.l2miss.coalesced"), 1u);
    EXPECT_EQ(snap.formulas.count("lat.l2miss.overlap_frac"), 1u);
    EXPECT_EQ(snap.histograms.count("lat.l2miss.total"), 1u);
    EXPECT_EQ(snap.histograms.count("lat.l2miss.overlap"), 1u);
    for (unsigned i = 0; i < obs::kNumMissSegments; ++i) {
        const auto s = static_cast<MissSegment>(i);
        const std::string name = obs::missSegmentName(s);
        EXPECT_EQ(snap.histograms.count("lat.l2miss." + name), 1u)
            << name;
        EXPECT_EQ(snap.formulas.count("lat.l2miss.share." + name), 1u)
            << name;
    }
}

TEST(LatencyLedger, RenderTableShowsBreakdown)
{
    LatencyLedger led;
    MissRecord *rec = led.begin(Tick{});
    rec->stamp(MissSegment::NocReq, Tick{}, nsToTicks(6.5));
    rec->crypto_begin = Tick{};
    rec->crypto_end = nsToTicks(14.0);
    rec->hide_until = nsToTicks(14.0);
    led.finish(rec, nsToTicks(60.0));

    const std::string table = led.renderTable();
    EXPECT_NE(table.find("where did the time go"), std::string::npos);
    EXPECT_NE(table.find("noc_req"), std::string::npos);
    EXPECT_NE(table.find("overlap"), std::string::npos);
}

// ---------------------------------------------------------------- e2e

WorkloadParams
tinyParams()
{
    WorkloadParams p;
    p.cores = 2;
    p.trace_len = 60'000;
    p.graph_vertices = 1 << 15;
    p.graph_degree = 8;
    p.footprint_scale = 1.0 / 32.0;
    return p;
}

SystemConfig
tinyConfig(Scheme scheme)
{
    SystemConfig cfg;
    cfg.cores = 2;
    cfg.l1_bytes = 16_KiB;
    cfg.l2_bytes = 64_KiB;
    cfg.llc_bytes = 256_KiB;
    cfg.mc_ctr_cache_bytes = 8_KiB;
    cfg.l2_ctr_cap_bytes = 4_KiB;
    cfg.data_region_bytes = 1_GiB;
    cfg.scheme = scheme;
    return cfg;
}

const WorkloadSet &
bfsWorkload()
{
    static const WorkloadSet w = buildWorkload("BFS", tinyParams());
    return w;
}

/** Run a scheme with a ledger attached and hand back the aggregates. */
void
runWithLedger(Scheme scheme, LatencyLedger &led)
{
    Simulator sim;
    sim.setLedger(&led);
    SecureSystem sys(sim, tinyConfig(scheme), &bfsWorkload());
    sys.run(50'000, 100'000);
}

TEST(LedgerTiming, MatchesAnalyticalTimeline)
{
    LatencyLedger led;
    runWithLedger(Scheme::Emcc, led);
    ASSERT_GT(led.records(), 100u);

    const TimelineParams p;  // Table-I constants

    // Contention-free constants must come back exactly (the stamps use
    // the same config values the timelines are built from).
    EXPECT_NEAR(led.segmentMeanNs(MissSegment::NocReq),
                p.req_l2_to_llc_ns, 0.5);
    EXPECT_NEAR(led.segmentMeanNs(MissSegment::NocLlcMc),
                p.noc_llc_mc_ns, 1.0);
    // The response hop carries NoC jitter and the EMCC counter-payload
    // extra on some fills.
    EXPECT_NEAR(led.segmentMeanNs(MissSegment::NocResp),
                p.resp_mc_to_l2_ns, 5.0);
    EXPECT_NEAR(led.segmentMeanNs(MissSegment::L2Lookup), 4.0, 1.0);

    // The MAC carve is bounded by the AES latency by construction.
    EXPECT_GT(led.segmentMeanNs(MissSegment::MacVerify), 0.0);
    EXPECT_LE(led.segmentMeanNs(MissSegment::MacVerify), p.aes_ns + 0.5);

    // DRAM service includes data-bus occupancy, so the analytical
    // array-access times are lower bounds.
    if (led.segmentHist(MissSegment::DramRowHit).count() > 0) {
        EXPECT_GE(led.segmentMeanNs(MissSegment::DramRowHit),
                  p.dram_row_hit_ns - 0.5);
    }
    if (led.segmentHist(MissSegment::DramRowMiss).count() > 0) {
        EXPECT_GE(led.segmentMeanNs(MissSegment::DramRowMiss),
                  p.dram_row_miss_ns - 0.5);
    }

    // Attribution must be complete: serial segments plus the residual
    // reconstruct the measured total exactly.
    double covered = led.share(MissSegment::CtrWait) +
                     led.share(MissSegment::NocReq) +
                     led.share(MissSegment::Llc) +
                     led.share(MissSegment::NocLlcMc) +
                     led.share(MissSegment::McQueue) +
                     led.share(MissSegment::DramRowHit) +
                     led.share(MissSegment::DramRowMiss) +
                     led.share(MissSegment::NocResp) +
                     led.share(MissSegment::Other);
    EXPECT_NEAR(covered, 1.0, 1e-6);

    // Scenario-level sanity: an L2 miss that went all the way to DRAM
    // cannot beat the cheapest analytical DRAM-bound scenario (counter
    // hits in LLC, row hit), and the population mean stays within a
    // queueing-inflated multiple of the most expensive one (counter
    // misses everywhere, row miss). The timelines carry no contention,
    // the measurement does, hence the one-sided slack. LLC data hits
    // dilute the mean downwards, so the lower bound uses the
    // DRAM-bound serial path reconstructed from the segment means.
    const Timeline cheap = timelines::emccCtrHitLlc(p);
    const Timeline dear = timelines::emccCtrMissLlc(p);
    ASSERT_GT(cheap.complete_ns, 0.0);
    ASSERT_GT(dear.complete_ns, cheap.complete_ns * 0.99);
    const Count to_dram = led.segmentHist(MissSegment::NocReq).count();
    ASSERT_GT(to_dram, 0u);
    const double dram_blend =
        (led.segmentMeanNs(MissSegment::DramRowHit) *
             static_cast<double>(
                 led.segmentHist(MissSegment::DramRowHit).count()) +
         led.segmentMeanNs(MissSegment::DramRowMiss) *
             static_cast<double>(
                 led.segmentHist(MissSegment::DramRowMiss).count())) /
        static_cast<double>(to_dram);
    const double dram_path = led.segmentMeanNs(MissSegment::NocReq) +
                             led.segmentMeanNs(MissSegment::NocLlcMc) +
                             dram_blend +
                             led.segmentMeanNs(MissSegment::NocResp);
    EXPECT_GE(dram_path, cheap.complete_ns * 0.9);
    EXPECT_LE(dram_path, dear.complete_ns * 6.0);
    // And the overall mean cannot exceed the DRAM-bound mean: the rest
    // of the population stopped at the LLC.
    EXPECT_LE(led.totalHist().mean(), dram_path * 1.5);

    // The analytical scenarios themselves expose their DRAM portion
    // through segmentTotalNs (the knob this test keys tolerances off).
    EXPECT_NEAR(segmentTotalNs(dear, "DRAM", "Data"),
                p.dram_row_miss_ns, 1e-9);
    EXPECT_GT(segmentTotalNs(dear, "AES"), 0.0);
}

TEST(LedgerTiming, EmccOverlapExceedsMcCrypto)
{
    LatencyLedger emcc, baseline;
    runWithLedger(Scheme::Emcc, emcc);
    runWithLedger(Scheme::LlcBaseline, baseline);

    ASSERT_GT(emcc.cryptoRecords(), 0u);
    ASSERT_GT(baseline.cryptoRecords(), 0u);
    // The paper's headline: decrypting at the L2 lets the counter/AES
    // lane hide under the data block's NoC response flight, which
    // MC-side crypto cannot.
    EXPECT_GT(emcc.overlapFrac(), baseline.overlapFrac());
}

} // namespace
} // namespace emcc

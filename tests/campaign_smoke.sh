#!/bin/bash
# Campaign engine smoke test, run from ctest:
#
#   campaign_smoke.sh [--reduced] <path-to-emcc_campaign> [journal-out]
#
# When [journal-out] is given, the validated journal is copied there
# before the workdir is cleaned up (CI uploads it as an artifact).
#
# Runs a 200-run grid with deterministic chaos — every 9th run fails
# its first attempt (retry), every 23rd fails every attempt (terminal
# failure), every 67th wedges until the per-run deadline (timeout then
# retry) — and validates the journal record-by-record against the
# schedule with check_campaign.py: checksums, completeness, exact
# outcome/attempts/timeouts accounting, stats presence.
#
# --reduced shrinks the grid to 60 runs (chaos periods scaled to keep
# every failure mode represented) for slow instrumented builds: the
# TSan CI job runs this mode so the full dispatcher/worker/monitor
# machinery — retries, deadlines, journal appends — executes under the
# race detector without a 10x wall-clock bill.
set -u

REDUCED=0
if [ "${1:-}" = "--reduced" ]; then
    REDUCED=1
    shift
fi

CAMPAIGN="${1:?usage: campaign_smoke.sh [--reduced] <emcc_campaign> [journal-out]}"
JOURNAL_OUT="${2:-}"
SCRIPT_DIR="$(cd "$(dirname "${BASH_SOURCE[0]}")" && pwd)"

TMP="$(mktemp -d "${TMPDIR:-/tmp}/emcc_campaign_smoke.XXXXXX")"
trap 'rm -rf "$TMP"' EXIT

if [ "$REDUCED" = 1 ]; then
    TOTAL=60
    SEEDS="1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15"
    FAIL_PERIOD=7
    HARD_FAIL_PERIOD=19
    WEDGE_PERIOD=29
else
    TOTAL=200
    SEEDS="1, 2, 3, 4, 5, 6, 7, 8, 9, 10,
             11, 12, 13, 14, 15, 16, 17, 18, 19, 20,
             21, 22, 23, 24, 25, 26, 27, 28, 29, 30,
             31, 32, 33, 34, 35, 36, 37, 38, 39, 40,
             41, 42, 43, 44, 45, 46, 47, 48, 49, 50"
    FAIL_PERIOD=9
    HARD_FAIL_PERIOD=23
    WEDGE_PERIOD=67
fi

cat > "$TMP/spec.json" <<EOF
{
  "schema": "emcc-campaign-spec-v1",
  "name": "smoke$TOTAL",
  "deadline_s": 2,
  "retries": 2,
  "backoff_ms": 1,
  "grid": {
    "workload": ["BFS"],
    "scheme": ["emcc", "baseline", "mconly", "nonsecure"],
    "seed": [$SEEDS],
    "cores": 2,
    "warmup": 500,
    "measure": 1000,
    "trace_len": 4000,
    "graph_vertices": 1024
  },
  "chaos": {
    "fail_period": $FAIL_PERIOD,
    "fail_attempts": 1,
    "hard_fail_period": $HARD_FAIL_PERIOD,
    "wedge_period": $WEDGE_PERIOD,
    "wedge_attempts": 1
  }
}
EOF

# --best-effort: the hard-failed runs are *expected*, so the exit
# code must be 0; a crash/interrupt would still exit non-zero.
if ! "$CAMPAIGN" --spec "$TMP/spec.json" --jobs 4 \
        --journal "$TMP/journal.jsonl" --no-fsync --quiet \
        --best-effort; then
    echo "campaign_smoke: campaign exited non-zero" >&2
    exit 1
fi

if [ -n "$JOURNAL_OUT" ]; then
    cp "$TMP/journal.jsonl" "$JOURNAL_OUT"
fi

exec python3 "$SCRIPT_DIR/check_campaign.py" "$TMP/journal.jsonl" "$TOTAL" \
    --retries 2 --fail-period "$FAIL_PERIOD" --fail-attempts 1 \
    --hard-fail-period "$HARD_FAIL_PERIOD" --wedge-period "$WEDGE_PERIOD" \
    --wedge-attempts 1

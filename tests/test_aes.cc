/**
 * @file
 * AES correctness against the FIPS-197 reference vectors, plus
 * round-trip property tests.
 */

#include <gtest/gtest.h>

#include <array>
#include <cstring>

#include "common/rng.hh"
#include "crypto/aes.hh"

namespace emcc {
namespace {

std::array<std::uint8_t, 16>
hex16(const char *hex)
{
    std::array<std::uint8_t, 16> out{};
    for (int i = 0; i < 16; ++i)
        std::sscanf(hex + 2 * i, "%2hhx", &out[i]);
    return out;
}

std::array<std::uint8_t, 32>
hex32(const char *hex)
{
    std::array<std::uint8_t, 32> out{};
    for (int i = 0; i < 32; ++i)
        std::sscanf(hex + 2 * i, "%2hhx", &out[i]);
    return out;
}

TEST(Aes, Fips197Appendix_B_Aes128)
{
    // FIPS-197 Appendix B worked example.
    const auto key = hex16("2b7e151628aed2a6abf7158809cf4f3c");
    const auto pt = hex16("3243f6a8885a308d313198a2e0370734");
    const auto expect = hex16("3925841d02dc09fbdc118597196a0b32");
    std::uint8_t ct[16];
    Aes::aes128(key).encryptBlock(pt.data(), ct);
    EXPECT_EQ(0, std::memcmp(ct, expect.data(), 16));
}

TEST(Aes, Fips197Appendix_C1_Aes128)
{
    const auto key = hex16("000102030405060708090a0b0c0d0e0f");
    const auto pt = hex16("00112233445566778899aabbccddeeff");
    const auto expect = hex16("69c4e0d86a7b0430d8cdb78070b4c55a");
    std::uint8_t ct[16];
    const Aes aes = Aes::aes128(key);
    aes.encryptBlock(pt.data(), ct);
    EXPECT_EQ(0, std::memcmp(ct, expect.data(), 16));

    std::uint8_t back[16];
    aes.decryptBlock(ct, back);
    EXPECT_EQ(0, std::memcmp(back, pt.data(), 16));
}

TEST(Aes, Fips197Appendix_C3_Aes256)
{
    const auto key = hex32(
        "000102030405060708090a0b0c0d0e0f"
        "101112131415161718191a1b1c1d1e1f");
    const auto pt = hex16("00112233445566778899aabbccddeeff");
    const auto expect = hex16("8ea2b7ca516745bfeafc49904b496089");
    std::uint8_t ct[16];
    const Aes aes = Aes::aes256(key);
    aes.encryptBlock(pt.data(), ct);
    EXPECT_EQ(0, std::memcmp(ct, expect.data(), 16));

    std::uint8_t back[16];
    aes.decryptBlock(ct, back);
    EXPECT_EQ(0, std::memcmp(back, pt.data(), 16));
}

TEST(Aes, RoundCounts)
{
    const auto k128 = hex16("00000000000000000000000000000000");
    EXPECT_EQ(Aes::aes128(k128).rounds(), 10u);
    const auto k256 = hex32(
        "00000000000000000000000000000000"
        "00000000000000000000000000000000");
    EXPECT_EQ(Aes::aes256(k256).rounds(), 14u);
}

TEST(Aes, EncryptDecryptRoundTripRandom)
{
    Rng rng(99);
    std::array<std::uint8_t, 16> key;
    for (auto &b : key)
        b = static_cast<std::uint8_t>(rng.next());
    const Aes aes = Aes::aes128(key);
    for (int trial = 0; trial < 64; ++trial) {
        std::uint8_t pt[16], ct[16], back[16];
        for (auto &b : pt)
            b = static_cast<std::uint8_t>(rng.next());
        aes.encryptBlock(pt, ct);
        aes.decryptBlock(ct, back);
        ASSERT_EQ(0, std::memcmp(pt, back, 16));
        // Ciphertext must differ from plaintext (overwhelmingly likely).
        ASSERT_NE(0, std::memcmp(pt, ct, 16));
    }
}

TEST(Aes, InPlaceAliasing)
{
    const auto key = hex16("000102030405060708090a0b0c0d0e0f");
    const auto pt = hex16("00112233445566778899aabbccddeeff");
    const auto expect = hex16("69c4e0d86a7b0430d8cdb78070b4c55a");
    std::uint8_t buf[16];
    std::memcpy(buf, pt.data(), 16);
    const Aes aes = Aes::aes128(key);
    aes.encryptBlock(buf, buf);
    EXPECT_EQ(0, std::memcmp(buf, expect.data(), 16));
    aes.decryptBlock(buf, buf);
    EXPECT_EQ(0, std::memcmp(buf, pt.data(), 16));
}

TEST(Aes, KeySensitivity)
{
    auto key = hex16("000102030405060708090a0b0c0d0e0f");
    const auto pt = hex16("00112233445566778899aabbccddeeff");
    std::uint8_t ct1[16], ct2[16];
    Aes::aes128(key).encryptBlock(pt.data(), ct1);
    key[15] ^= 1;
    Aes::aes128(key).encryptBlock(pt.data(), ct2);
    EXPECT_NE(0, std::memcmp(ct1, ct2, 16));
}

} // namespace
} // namespace emcc

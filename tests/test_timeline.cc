/**
 * @file
 * Tests for the analytical timelines (Figs 5, 8, 10, 13, 14): the
 * overheads/savings the paper derives must come out of the same
 * latency constants.
 */

#include <gtest/gtest.h>

#include "secmem/timeline.hh"

namespace emcc {
namespace {

using namespace timelines;

TEST(Timeline, Fig5Overhead19ns)
{
    TimelineParams p;
    const auto without = ctrMissNoLlc(p);
    const auto with = ctrMissWithLlc(p);
    // The paper's Fig-5 arrow: caching counters in LLC adds the 19 ns
    // Direct-LLC-Latency to the counter-miss critical path.
    EXPECT_NEAR(with.complete_ns - without.complete_ns, 19.0, 1e-9);
}

TEST(Timeline, Fig5CriticalPathIsCounter)
{
    TimelineParams p;
    const auto t = ctrMissWithLlc(p);
    // Counter path: 3 + 19 + 30 + 3 + 14 = 69 ns; data alone is 30.
    EXPECT_NEAR(t.complete_ns, 69.0, 1e-9);
}

TEST(Timeline, Fig8CounterHitInMcIsFree)
{
    TimelineParams p;
    const auto t = ctrHitMc(p);
    // AES finishes (3+3+14=20) before the 30 ns DRAM access: counter
    // access is off the critical path.
    EXPECT_NEAR(t.complete_ns, 30.0, 1e-9);
}

TEST(Timeline, Fig8LlcHitAddsOverhead)
{
    TimelineParams p;
    const auto mc = ctrHitMc(p);
    const auto llc = ctrHitLlc(p);
    // 3 + 19 + 3 + 14 = 39 vs 30: ~9 ns overhead (the paper draws 8 ns
    // with slightly different rounding).
    EXPECT_NEAR(llc.complete_ns - mc.complete_ns, 9.0, 1e-9);
}

TEST(Timeline, Fig10EmccRespondsEarlier)
{
    TimelineParams p;
    const auto emcc = emccCtrMissLlc(p);
    const auto base = baselineCtrMissLlc(p);
    // The paper's Fig 10: EMCC responds 16 ns earlier under an LLC
    // counter miss.
    EXPECT_NEAR(base.complete_ns - emcc.complete_ns, 16.0, 1e-9);
}

TEST(Timeline, Fig13EmccHidesAesBehindResponseTravel)
{
    TimelineParams p;
    const auto emcc = emccCtrHitLlc(p);
    const auto base = baselineCtrHitLlc(p);
    EXPECT_GT(base.complete_ns, emcc.complete_ns);
    // Under EMCC the AES at L2 finishes before the data response
    // arrives — it is fully hidden.
    double aes_end = 0.0, data_arrival = 0.0;
    for (const auto &s : emcc.segments) {
        if (s.label.find("AES @L2") != std::string::npos)
            aes_end = s.end_ns;
        if (s.label.find("MC->L2 response") != std::string::npos)
            data_arrival = s.end_ns;
    }
    EXPECT_GT(data_arrival, aes_end);
    EXPECT_NEAR(emcc.complete_ns, data_arrival, 1e-9);
}

TEST(Timeline, Fig14XptSavings)
{
    TimelineParams p;
    const auto emcc = emccXpt(p);
    const auto base = baselineXpt(p);
    // EMCC still wins with XPT miss prediction under a row miss; the
    // magnitude depends on route constants (the paper draws 22 ns).
    EXPECT_GT(base.complete_ns - emcc.complete_ns, 5.0);
}

TEST(Timeline, AesLatencySensitivityDirection)
{
    // Fig 18's mechanism: increasing AES latency hurts the baseline
    // (AES on the critical path) but not EMCC (AES hidden).
    TimelineParams fast, slow;
    slow.aes_ns = 25.0;
    const double base_delta = baselineCtrHitLlc(slow).complete_ns -
                              baselineCtrHitLlc(fast).complete_ns;
    const double emcc_delta = emccCtrHitLlc(slow).complete_ns -
                              emccCtrHitLlc(fast).complete_ns;
    EXPECT_NEAR(base_delta, 11.0, 1e-9);   // fully exposed
    EXPECT_NEAR(emcc_delta, 0.0, 1e-9);    // fully hidden
}

TEST(Timeline, SegmentsAreOrderedAndPositive)
{
    TimelineParams p;
    for (const auto &t : {ctrMissNoLlc(p), ctrMissWithLlc(p), ctrHitMc(p),
                          ctrHitLlc(p), emccCtrMissLlc(p),
                          baselineCtrMissLlc(p), emccCtrHitLlc(p),
                          baselineCtrHitLlc(p), emccXpt(p),
                          baselineXpt(p)}) {
        ASSERT_FALSE(t.segments.empty());
        for (const auto &s : t.segments) {
            EXPECT_GE(s.start_ns, 0.0) << t.title << " / " << s.label;
            EXPECT_GT(s.end_ns, s.start_ns) << t.title << " / " << s.label;
        }
        EXPECT_GT(t.complete_ns, 0.0);
    }
}

TEST(Timeline, RenderContainsLanesAndLabels)
{
    TimelineParams p;
    const auto t = ctrMissWithLlc(p);
    const std::string art = renderTimeline(t);
    EXPECT_NE(art.find("Data"), std::string::npos);
    EXPECT_NE(art.find("Counter"), std::string::npos);
    EXPECT_NE(art.find("LLC counter access"), std::string::npos);
    EXPECT_NE(art.find("complete at"), std::string::npos);
}

} // namespace
} // namespace emcc

/**
 * @file
 * Pool-layer guarantees for the data-oriented memory system:
 *
 *  - SlabPool recycles released slots in place (same slot index,
 *    bumped generation) and detects stale handles and double release;
 *  - FinishPool continuations are one-shot — double completion panics
 *    instead of corrupting a new tenant — and a torn-down pool
 *    destroys closures that never fired;
 *  - the DRAM enqueue -> service -> complete path and the MSHR
 *    allocate -> merge -> complete path perform ZERO heap allocation
 *    in steady state (counted, not assumed, via replaced operator
 *    new), and their slab pools stop growing once warm.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <new>
#include <vector>

#include "cache/mshr.hh"
#include "dram/dram.hh"
#include "sim/finish_pool.hh"
#include "sim/simulator.hh"
#include "sim/slab_pool.hh"
#include "system/secure_system.hh"

// Counting allocator, same arrangement as test_event_queue.cc: every
// scalar heap allocation in this binary bumps the counter so the
// zero-allocation contracts below are measured facts.
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
static std::uint64_t g_heap_allocs = 0;

void *
operator new(std::size_t n)
{
    ++g_heap_allocs;
    if (void *p = std::malloc(n))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](std::size_t n)
{
    ++g_heap_allocs;
    if (void *p = std::malloc(n))
        return p;
    throw std::bad_alloc();
}

void operator delete(void *p) noexcept { std::free(p); }
// emcc-lint: allow(raw-new) — counting replacement, not a call site
void operator delete[](void *p) noexcept { std::free(p); }
void operator delete(void *p, std::size_t) noexcept { std::free(p); }
// emcc-lint: allow(raw-new) — counting replacement, not a call site
void operator delete[](void *p, std::size_t) noexcept { std::free(p); }

namespace emcc {
namespace {

// ------------------------------------------------------------ SlabPool

TEST(SlabPool, ReleasedSlotIsReusedWithBumpedGeneration)
{
    SlabPool<int> pool;
    const std::uint32_t slot = pool.alloc();
    pool.at(slot) = 7;
    const PoolId first = pool.idOf(slot);
    EXPECT_TRUE(pool.live(first));

    pool.release(slot);
    EXPECT_FALSE(pool.live(first)) << "released handle must go stale";

    // LIFO free list: the very next alloc hands back the same slot...
    const std::uint32_t again = pool.alloc();
    EXPECT_EQ(again, slot);
    // ...under a new generation, so the old handle stays dead.
    EXPECT_NE(pool.idOf(again), first);
    EXPECT_EQ(SlabPool<int>::idSlot(pool.idOf(again)),
              SlabPool<int>::idSlot(first));
    EXPECT_EQ(SlabPool<int>::idGeneration(pool.idOf(again)),
              SlabPool<int>::idGeneration(first) + 1);
    EXPECT_FALSE(pool.live(first));
    EXPECT_TRUE(pool.live(pool.idOf(again)));
}

TEST(SlabPool, DoubleReleasePanics)
{
    SlabPool<int> pool;
    const std::uint32_t slot = pool.alloc();
    pool.release(slot);
    EXPECT_DEATH(pool.release(slot), "double release");
}

TEST(SlabPool, ReferencesSurviveGrowth)
{
    SlabPool<std::uint64_t> pool;
    const std::uint32_t first = pool.alloc();
    pool.at(first) = 0xdeadbeefu;
    std::uint64_t *ref = &pool.at(first);
    // Force several chunk growths; chunked slabs must never move.
    std::vector<std::uint32_t> slots;
    for (int i = 0; i < 2000; ++i)
        slots.push_back(pool.alloc());
    EXPECT_EQ(ref, &pool.at(first));
    EXPECT_EQ(*ref, 0xdeadbeefu);
    EXPECT_EQ(pool.inUse(), slots.size() + 1);
}

// ----------------------------------------------------------- FinishPool

TEST(FinishPool, InvokeRunsClosureOnceAndRecyclesSlot)
{
    FinishPool fp;
    Tick got = kTickInvalid;
    FinishCb cb = fp.make([&got](Tick t) { got = t; });
    ASSERT_TRUE(static_cast<bool>(cb));
    EXPECT_EQ(fp.inUse(), 1u);
    cb(Tick{17});
    EXPECT_EQ(got, Tick{17});
    EXPECT_EQ(fp.inUse(), 0u);

    // The slot is recycled: same slot index, bumped generation.
    FinishCb cb2 = fp.make([](Tick) {});
    EXPECT_EQ(FinishPool::idSlot(cb2.id()), FinishPool::idSlot(cb.id()));
    EXPECT_GT(FinishPool::idGeneration(cb2.id()),
              FinishPool::idGeneration(cb.id()));
    cb2(Tick{0});
}

TEST(FinishPool, DoubleCompletionPanics)
{
    FinishPool fp;
    FinishCb cb = fp.make([](Tick) {});
    cb(Tick{1});
    EXPECT_DEATH(cb(Tick{2}), "invoked twice");
}

TEST(FinishPool, NullHandleIsFalseyAndPanicsOnInvoke)
{
    FinishCb null_cb;
    EXPECT_FALSE(static_cast<bool>(null_cb));
    FinishCb from_nullptr = nullptr;
    EXPECT_FALSE(static_cast<bool>(from_nullptr));
    EXPECT_DEATH(null_cb(Tick{0}), "null FinishCb");
}

TEST(FinishPool, TeardownDestroysUnfiredClosures)
{
    auto token = std::make_shared<int>(42);
    ASSERT_EQ(token.use_count(), 1);
    {
        FinishPool fp;
        FinishCb leaked = fp.make([token](Tick) {});
        (void)leaked;   // never invoked — e.g. stuck in an MSHR at exit
        EXPECT_EQ(token.use_count(), 2);
    }
    EXPECT_EQ(token.use_count(), 1)
        << "pool destructor must destroy un-run closures";
}

TEST(FinishPool, SteadyStateMakeInvokeDoesNotAllocate)
{
    FinishPool fp;
    std::uint64_t sum = 0;
    // Warm: first make() grows the slab chunk.
    fp.make([&sum](Tick t) { sum += t.value(); })(Tick{1});

    const std::uint64_t before = g_heap_allocs;
    for (int i = 0; i < 10'000; ++i) {
        FinishCb cb = fp.make([&sum, i](Tick t) {
            sum += t.value() + static_cast<std::uint64_t>(i);
        });
        cb(Tick{static_cast<std::uint64_t>(i)});
    }
    EXPECT_EQ(g_heap_allocs, before)
        << "pooled continuation cycle must not touch the heap";
    EXPECT_EQ(fp.slots(), 256u) << "one chunk is plenty for one-at-a-time";
}

// ------------------------------------------------- DRAM miss path

TEST(MemoryPools, DramSteadyStateDoesNotAllocate)
{
    DramConfig cfg;
    Simulator sim;
    DramMemory mem(sim, "m", cfg);
    FinishPool fp;
    std::uint64_t completions = 0;

    const auto pump = [&](int rounds) {
        for (int r = 0; r < rounds; ++r) {
            for (std::uint64_t i = 0; i < 64; ++i) {
                DramRequest rd;
                rd.addr = Addr{(i * 97 + static_cast<std::uint64_t>(r)) %
                               4096 * kBlockBytes};
                rd.on_complete =
                    fp.make([&completions](Tick) { ++completions; });
                ASSERT_TRUE(mem.enqueue(rd));
                DramRequest wr;
                wr.addr = Addr{(i * 131) % 4096 * kBlockBytes};
                wr.is_write = true;
                ASSERT_TRUE(mem.enqueue(wr));
            }
            sim.run();
        }
    };

    // Warm pools, queues, banks, and the event kernel to the regime's
    // high-water mark.
    pump(4);
    const std::size_t pend_slots = mem.channel(0).pendingPoolSlots();
    const std::uint64_t before = g_heap_allocs;
    pump(8);
    EXPECT_EQ(g_heap_allocs, before)
        << "enqueue -> service -> complete must be allocation-free "
           "in steady state";
    EXPECT_EQ(mem.channel(0).pendingPoolSlots(), pend_slots)
        << "pending-record pool must stop growing once warm";
    EXPECT_EQ(completions, 64u * 12u);
}

TEST(MemoryPools, MshrSteadyStateDoesNotAllocate)
{
    MshrFile m(16);
    FinishPool fp;
    std::uint64_t fills = 0;

    const auto cycle = [&](int rounds) {
        for (int r = 0; r < rounds; ++r) {
            for (std::uint64_t b = 0; b < 16; ++b) {
                const Addr a{b * kBlockBytes};
                ASSERT_EQ(m.allocate(a, fp.make([&fills](Tick) {
                              ++fills;
                          })),
                          MshrOutcome::NewMiss);
                // One merged waiter per block: exercises the chain.
                ASSERT_EQ(m.allocate(a, fp.make([&fills](Tick) {
                              ++fills;
                          })),
                          MshrOutcome::Merged);
            }
            for (std::uint64_t b = 0; b < 16; ++b)
                ASSERT_EQ(m.complete(Addr{b * kBlockBytes}, Tick{b}), 2u);
        }
    };

    cycle(2);   // warm entry/waiter/closure pools
    const std::size_t entry_slots = m.entryPoolSlots();
    const std::size_t waiter_slots = m.waiterPoolSlots();
    const std::uint64_t before = g_heap_allocs;
    cycle(16);
    EXPECT_EQ(g_heap_allocs, before)
        << "allocate/merge/complete must be allocation-free once warm";
    EXPECT_EQ(m.entryPoolSlots(), entry_slots);
    EXPECT_EQ(m.waiterPoolSlots(), waiter_slots);
    EXPECT_EQ(fills, 2u * 16u * 18u);
}

// -------------------------------------- full-system LLC-miss path

TEST(MemoryPools, LlcMissJoinWalkSteadyStateDoesNotAllocate)
{
    WorkloadParams wp;
    wp.cores = 2;
    wp.trace_len = 60'000;
    wp.graph_vertices = 1 << 15;
    wp.graph_degree = 8;
    wp.footprint_scale = 1.0 / 32.0;
    const WorkloadSet set = buildWorkload("BFS", wp);

    SystemConfig cfg;
    cfg.cores = 2;
    cfg.l1_bytes = 16_KiB;
    cfg.l2_bytes = 64_KiB;
    cfg.llc_bytes = 256_KiB;
    cfg.mc_ctr_cache_bytes = 8_KiB;
    cfg.l2_ctr_cap_bytes = 4_KiB;
    cfg.data_region_bytes = 1_GiB;
    cfg.scheme = Scheme::Emcc;

    Simulator sim;
    SecureSystem sys(sim, cfg, &set);

    // Warm in two steps: the functional fast-forward touches every
    // trace reference, so all address-keyed maps (counter values,
    // metadata tree, page table) reach their final size; the detailed
    // phase then warms the event/MSHR/DRAM/join/walk/overflow pools to
    // the regime's high-water mark. It must be long enough to include
    // the first morphable counter overflow, which sizes the overflow
    // job pool.
    sys.fastForward(wp.trace_len + 1'000);
    sys.runPhaseQuiesced(160'000);

    const std::size_t join_slots = sys.joinPoolSlots();
    const std::size_t walk_slots = sys.walkPoolSlots();
    EXPECT_GT(join_slots, 0u) << "EMCC run must have exercised joins";
    EXPECT_GT(walk_slots, 0u) << "EMCC run must have exercised walks";

    const std::uint64_t before = g_heap_allocs;
    sys.runPhaseQuiesced(80'000);
    EXPECT_EQ(g_heap_allocs, before)
        << "the per-LLC-miss join/walk path must be allocation-free "
           "once warm (slab-pooled state, [this, slot] closures only)";
    EXPECT_EQ(sys.joinPoolSlots(), join_slots)
        << "join pool must stop growing once warm";
    EXPECT_EQ(sys.walkPoolSlots(), walk_slots)
        << "walk pool must stop growing once warm";
    EXPECT_GT(sys.stats().llc_data_misses + sys.stats().llc_ctr_misses, 0u);
}

} // namespace
} // namespace emcc
